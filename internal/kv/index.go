package kv

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/metrics"
)

// Secondary indexes over state-map columns, maintained inline on the
// write path (put / delete / batched apply) under the same segment lock
// as the entries map — so an index read under the segment read-lock is
// always consistent with the entries it points at, for live reads and for
// snapshot maps alike (a snapshot map's values are version chains; its
// index is maintained on the same chain upserts).
//
// Correctness contract: an index lookup returns a SUPERSET of the entries
// a full scan would have examined for the same predicate, never a subset.
// The pushed-down filter still runs over every candidate, so false
// positives only cost work; a false negative would be a wrong answer.
// Three rules keep the superset property:
//
//   - All numeric values share one key kind ('N'), keyed by an
//     order-preserving transform of their float64 image, because SQL
//     equality and ordering coerce ints and floats. Conversion through
//     float64 is monotone (not injective above 2^53), so distinct huge
//     ints may share a posting — a superset, which the filter resolves.
//   - Range bounds are always applied inclusively at the index level;
//     strictness lives in the filter.
//   - Entries whose extraction was incomplete (missing column, nil,
//     unindexable type) land in an "odd" set, and entries of a different
//     kind than the probe are unioned in wholesale — a full scan would
//     have examined those rows too (and possibly errored on them, e.g.
//     comparing a string cell against a numeric literal), so the index
//     must not hide them. A homogeneous column has empty foreign sets and
//     full selectivity; the safety net costs nothing until types mix.

// IndexKind selects the index structure: hash (equality probes only) or
// B-tree (equality and ordered ranges).
type IndexKind int

const (
	// IndexHash answers equality probes in O(1) per partition.
	IndexHash IndexKind = iota
	// IndexBTree answers equality and inclusive range probes.
	IndexBTree
)

func (k IndexKind) String() string {
	switch k {
	case IndexHash:
		return "hash"
	case IndexBTree:
		return "btree"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// ValueIndexer extracts the indexable values of one column from a stored
// value. It returns the values to index and whether extraction was
// complete; incomplete entries (complete == false) are kept in the index's
// odd set so every lookup still surfaces them. A multi-valued extractor
// (e.g. over a snapshot version chain) returns one value per version.
// A nil ValueIndexer defaults to AsRow(value).Field(col).
type ValueIndexer func(value any, col string) (vals []any, complete bool)

// ixKey is the normalized, comparable form of one indexed value.
// kind 'N' covers all numerics (order-preserving float64 bit transform),
// 's' strings, 'b' bools, 't' time.Time (UnixNano); see package comment
// for why numerics share a kind.
type ixKey struct {
	kind byte
	num  uint64
	str  string
}

// numIxKey maps f to a key whose uint64 ordering matches float ordering.
func numIxKey(f float64) ixKey {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return ixKey{kind: 'N', num: bits}
}

// makeIxKey normalizes a value to its index key; ok is false for types the
// index cannot key (those values live in the odd set).
func makeIxKey(v any) (ixKey, bool) {
	switch x := v.(type) {
	case int:
		return numIxKey(float64(x)), true
	case int8:
		return numIxKey(float64(x)), true
	case int16:
		return numIxKey(float64(x)), true
	case int32:
		return numIxKey(float64(x)), true
	case int64:
		return numIxKey(float64(x)), true
	case uint:
		return numIxKey(float64(x)), true
	case uint8:
		return numIxKey(float64(x)), true
	case uint16:
		return numIxKey(float64(x)), true
	case uint32:
		return numIxKey(float64(x)), true
	case uint64:
		return numIxKey(float64(x)), true
	case float32:
		return numIxKey(float64(x)), true
	case float64:
		return numIxKey(x), true
	case string:
		return ixKey{kind: 's', str: x}, true
	case bool:
		n := uint64(0)
		if x {
			n = 1
		}
		return ixKey{kind: 'b', num: n}, true
	case time.Time:
		return ixKey{kind: 't', num: uint64(x.UnixNano()) ^ (1 << 63)}, true
	default:
		return ixKey{}, false
	}
}

func ixKeyBytes(k ixKey) int64 { return int64(len(k.str)) + 24 }

// postingSetMin is the posting size past which a position map is built so
// removals stay O(1) on skewed columns (few values, huge postings).
const postingSetMin = 128

// posting is the set of entry keys holding one indexed value, stored as a
// slice for cheap iteration with an optional position map for cheap
// removal. The caller guarantees add is never called with a key already
// present (maintenance diffs old vs new key sets first).
type posting struct {
	keys []string
	pos  map[string]int
}

func (p *posting) add(ks string) {
	if p.pos == nil && len(p.keys) >= postingSetMin {
		p.pos = make(map[string]int, len(p.keys)+1)
		for i, k := range p.keys {
			p.pos[k] = i
		}
	}
	if p.pos != nil {
		p.pos[ks] = len(p.keys)
	}
	p.keys = append(p.keys, ks)
}

// remove deletes ks by swap-remove; it reports whether ks was present.
func (p *posting) remove(ks string) bool {
	if p.pos != nil {
		i, ok := p.pos[ks]
		if !ok {
			return false
		}
		last := len(p.keys) - 1
		moved := p.keys[last]
		p.keys[i] = moved
		p.keys = p.keys[:last]
		delete(p.pos, ks)
		if i != last {
			p.pos[moved] = i
		}
		return true
	}
	for i, k := range p.keys {
		if k == ks {
			p.keys[i] = p.keys[len(p.keys)-1]
			p.keys = p.keys[:len(p.keys)-1]
			return true
		}
	}
	return false
}

// indexPart is one partition's slice of an index. Everything in it is
// guarded by the owning segment's mu — mutation under the write lock,
// lookup under the read lock — which is what makes index reads
// snapshot-consistent with the entries map.
type indexPart struct {
	hash  map[byte]map[ixKey]*posting // IndexHash: kind -> key -> posting
	trees map[byte]*btree             // IndexBTree: kind -> ordered postings
	odd   map[string]struct{}         // entries with incomplete extraction

	refs     map[byte]int // live (entry, value) references per kind
	refTotal int64
	bytes    int64
	maintOps int64
	maintSeq uint64
}

func newIndexPart() *indexPart {
	return &indexPart{
		hash:  make(map[byte]map[ixKey]*posting),
		trees: make(map[byte]*btree),
		odd:   make(map[string]struct{}),
		refs:  make(map[byte]int),
	}
}

// Index is a secondary index over one column of one map.
type Index struct {
	m       *Map
	col     string
	kind    IndexKind
	extract ValueIndexer
	parts   []*indexPart

	// ready flips once the initial build has covered every partition;
	// lookups are not served before that (maintenance runs regardless —
	// the build rescans anything that raced it).
	ready   atomic.Bool
	lookups atomic.Int64
	maint   *metrics.Histogram // sampled maintenance latency (1 in 16)
}

// Column returns the indexed column.
func (ix *Index) Column() string { return ix.col }

// Kind returns the index structure kind.
func (ix *Index) Kind() IndexKind { return ix.kind }

// singleKey is the allocation-free extraction fast path for the default
// (nil) extractor: one column read, one normalized key or the odd set.
func (ix *Index) singleKey(value any) (k ixKey, hasKey, odd bool) {
	f, ok := AsRow(value).Field(ix.col)
	if !ok || f == nil {
		return ixKey{}, false, true
	}
	k, ok = makeIxKey(f)
	if !ok {
		return ixKey{}, false, true
	}
	return k, true, false
}

// keysFor extracts and normalizes the index keys of one stored value.
// odd reports whether the entry must (also) live in the odd set.
func (ix *Index) keysFor(value any) (keys []ixKey, odd bool) {
	var vals []any
	var complete bool
	if ix.extract != nil {
		vals, complete = ix.extract(value, ix.col)
	} else {
		f, ok := AsRow(value).Field(ix.col)
		if ok && f != nil {
			vals, complete = []any{f}, true
		}
	}
	odd = !complete
	for _, v := range vals {
		k, ok := makeIxKey(v)
		if !ok {
			odd = true
			continue
		}
		dup := false
		for _, have := range keys {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, k)
		}
	}
	return keys, odd
}

func ixKeysEqual(a, b []ixKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsIxKey(ks []ixKey, k ixKey) bool {
	for _, have := range ks {
		if have == k {
			return true
		}
	}
	return false
}

// update maintains the index for one entry mutation. It must run under
// the segment write lock of partition p, after the entries map has been
// read for the old value and before/after the mutation (order within the
// critical section doesn't matter — nothing else can observe it).
func (ix *Index) update(p int, ks string, oldVal any, had bool, newVal any, has bool) {
	ip := ix.parts[p]
	ip.maintSeq++
	sampled := ip.maintSeq&15 == 0
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}

	var oldKeys, newKeys []ixKey
	var oldBuf, newBuf [1]ixKey
	oldOdd, newOdd := false, false
	if ix.extract == nil {
		// Single-value fast path: no slice boxing on the put hot path.
		if had {
			k, hasKey, odd := ix.singleKey(oldVal)
			oldOdd = odd
			if hasKey {
				oldBuf[0] = k
				oldKeys = oldBuf[:1]
			}
		}
		if has {
			k, hasKey, odd := ix.singleKey(newVal)
			newOdd = odd
			if hasKey {
				newBuf[0] = k
				newKeys = newBuf[:1]
			}
		}
	} else {
		if had {
			oldKeys, oldOdd = ix.keysFor(oldVal)
		}
		if has {
			newKeys, newOdd = ix.keysFor(newVal)
		}
	}
	if had == has && oldOdd == newOdd && ixKeysEqual(oldKeys, newKeys) {
		ip.maintOps++
		if sampled {
			ix.maint.Record(time.Since(t0))
		}
		return
	}
	for _, k := range oldKeys {
		if !containsIxKey(newKeys, k) {
			ip.removeRef(k, ks)
		}
	}
	for _, k := range newKeys {
		if !containsIxKey(oldKeys, k) {
			ip.addRef(ix.kind, k, ks)
		}
	}
	wasOdd := had && oldOdd
	isOdd := has && newOdd
	if wasOdd && !isOdd {
		if _, ok := ip.odd[ks]; ok {
			delete(ip.odd, ks)
			ip.refTotal--
			ip.bytes -= int64(len(ks)) + 16
		}
	} else if isOdd && !wasOdd {
		if _, ok := ip.odd[ks]; !ok {
			ip.odd[ks] = struct{}{}
			ip.refTotal++
			ip.bytes += int64(len(ks)) + 16
		}
	}
	ip.maintOps++
	if sampled {
		ix.maint.Record(time.Since(t0))
	}
}

// addRef adds one (entry, value) reference. The caller guarantees the
// reference is not already present (update diffs key sets first).
func (ip *indexPart) addRef(kind IndexKind, k ixKey, ks string) {
	switch kind {
	case IndexHash:
		b := ip.hash[k.kind]
		if b == nil {
			b = make(map[ixKey]*posting)
			ip.hash[k.kind] = b
		}
		p := b[k]
		if p == nil {
			p = &posting{}
			b[k] = p
			ip.bytes += ixKeyBytes(k)
		}
		p.add(ks)
	case IndexBTree:
		t := ip.trees[k.kind]
		if t == nil {
			t = &btree{kind: k.kind}
			ip.trees[k.kind] = t
		}
		p, isNew := t.getOrInsert(k)
		if isNew {
			t.live++
			ip.bytes += ixKeyBytes(k)
		} else if len(p.keys) == 0 {
			t.empty--
			t.live++
		}
		p.add(ks)
	}
	ip.refs[k.kind]++
	ip.refTotal++
	ip.bytes += int64(len(ks)) + 16
}

// removeRef drops one (entry, value) reference, tolerating absence (a
// delete racing the initial build may target a reference the build never
// saw).
func (ip *indexPart) removeRef(k ixKey, ks string) {
	removed := false
	switch {
	case ip.hash[k.kind] != nil:
		b := ip.hash[k.kind]
		if p := b[k]; p != nil && p.remove(ks) {
			removed = true
			if len(p.keys) == 0 {
				delete(b, k)
				ip.bytes -= ixKeyBytes(k)
				if len(b) == 0 {
					delete(ip.hash, k.kind)
				}
			}
		}
	case ip.trees[k.kind] != nil:
		t := ip.trees[k.kind]
		if p := t.get(k); p != nil && p.remove(ks) {
			removed = true
			if len(p.keys) == 0 {
				t.live--
				t.empty++
				t.maybeCompact()
			}
		}
	}
	if !removed {
		return
	}
	ip.refs[k.kind]--
	if ip.refs[k.kind] == 0 {
		delete(ip.refs, k.kind)
	}
	ip.refTotal--
	ip.bytes -= int64(len(ks)) + 16
}

// rebuildLocked re-derives partition p's slice of the index from the
// entries map. The caller holds the segment write lock. Idempotent — it
// resets the slice first — so it doubles as the initial build, the
// post-migration rebuild and the post-promotion rebuild.
func (ix *Index) rebuildLocked(p int, entries map[string]Entry) {
	ip := newIndexPart()
	ix.parts[p] = ip
	for ks, e := range entries {
		keys, odd := ix.keysFor(e.Value)
		for _, k := range keys {
			ip.addRef(ix.kind, k, ks)
		}
		if odd {
			ip.odd[ks] = struct{}{}
			ip.refTotal++
			ip.bytes += int64(len(ks)) + 16
		}
	}
}

// IndexLookup describes one index probe: an equality probe on Eq, or —
// with Range set — an inclusive [Lo, Hi] range (nil bound = unbounded).
// Bounds are index-level candidates only; the caller's filter enforces
// exact and strict semantics.
type IndexLookup struct {
	Col   string
	Eq    any
	Range bool
	Lo    any
	Hi    any
}

// probeKeys normalizes a lookup's probe values; ok is false when the
// lookup cannot be served from an index at all (unkeyable probe value,
// mismatched bound kinds, unbounded both sides).
func (lk IndexLookup) probeKeys() (kind byte, eq ixKey, lo, hi *ixKey, ok bool) {
	if !lk.Range {
		k, ok := makeIxKey(lk.Eq)
		if !ok {
			return 0, ixKey{}, nil, nil, false
		}
		return k.kind, k, nil, nil, true
	}
	if lk.Lo == nil && lk.Hi == nil {
		return 0, ixKey{}, nil, nil, false
	}
	if lk.Lo != nil {
		k, ok := makeIxKey(lk.Lo)
		if !ok {
			return 0, ixKey{}, nil, nil, false
		}
		lo = &k
		kind = k.kind
	}
	if lk.Hi != nil {
		k, ok := makeIxKey(lk.Hi)
		if !ok {
			return 0, ixKey{}, nil, nil, false
		}
		hi = &k
		if lo != nil && k.kind != kind {
			return 0, ixKey{}, nil, nil, false
		}
		kind = k.kind
	}
	return kind, ixKey{}, lo, hi, true
}

// serves reports whether this index can answer the lookup.
func (ix *Index) serves(lk IndexLookup) bool {
	if ix.col != lk.Col || !ix.ready.Load() {
		return false
	}
	if lk.Range && ix.kind != IndexBTree {
		return false
	}
	_, _, _, _, ok := lk.probeKeys()
	return ok
}

// gatherLocked collects the candidate entry keys for a lookup in
// partition p: same-kind matches, all foreign-kind references, and the
// odd set. The caller holds the segment (read) lock. emit must tolerate
// duplicate keys — multi-valued extraction can land one entry in several
// same-kind postings.
func (ix *Index) gatherLocked(p int, lk IndexLookup, emit func(ks string)) {
	ip := ix.parts[p]
	kind, eq, lo, hi, ok := lk.probeKeys()
	if !ok {
		return
	}
	// Same-kind matches.
	if !lk.Range {
		var p *posting
		switch ix.kind {
		case IndexHash:
			if b := ip.hash[kind]; b != nil {
				p = b[eq]
			}
		case IndexBTree:
			if t := ip.trees[kind]; t != nil {
				p = t.get(eq)
			}
		}
		if p != nil {
			for _, ks := range p.keys {
				emit(ks)
			}
		}
	} else if t := ip.trees[kind]; t != nil {
		t.ascendRange(lo, hi, func(it btItem) bool {
			for _, ks := range it.post.keys {
				emit(ks)
			}
			return true
		})
	}
	// Foreign kinds: rows a full scan would also have examined (and
	// possibly errored on). Empty for a homogeneous column.
	for k, b := range ip.hash {
		if k == kind {
			continue
		}
		for _, post := range b {
			for _, ks := range post.keys {
				emit(ks)
			}
		}
	}
	for k, t := range ip.trees {
		if k == kind {
			continue
		}
		t.each(func(it btItem) bool {
			for _, ks := range it.post.keys {
				emit(ks)
			}
			return true
		})
	}
	// Odd set: incomplete extraction.
	for ks := range ip.odd {
		emit(ks)
	}
}

// estimateLocked counts the candidates gatherLocked would emit (with
// duplicates), in O(result + kinds) — range probes traverse their span.
func (ix *Index) estimateLocked(p int, lk IndexLookup) int64 {
	ip := ix.parts[p]
	kind, eq, lo, hi, ok := lk.probeKeys()
	if !ok {
		return 0
	}
	var n int64
	if !lk.Range {
		switch ix.kind {
		case IndexHash:
			if b := ip.hash[kind]; b != nil {
				if post := b[eq]; post != nil {
					n += int64(len(post.keys))
				}
			}
		case IndexBTree:
			if t := ip.trees[kind]; t != nil {
				if post := t.get(eq); post != nil {
					n += int64(len(post.keys))
				}
			}
		}
	} else if t := ip.trees[kind]; t != nil {
		t.ascendRange(lo, hi, func(it btItem) bool {
			n += int64(len(it.post.keys))
			return true
		})
	}
	for k, c := range ip.refs {
		if k != kind {
			n += int64(c)
		}
	}
	n += int64(len(ip.odd))
	return n
}

// indexes returns the map's published index set (nil when none).
func (m *Map) indexSet() []*Index {
	ixs := m.indexes.Load()
	if ixs == nil {
		return nil
	}
	return *ixs
}

// indexFor returns the first ready index able to serve the lookup.
func (m *Map) indexFor(lk IndexLookup) *Index {
	for _, ix := range m.indexSet() {
		if ix.serves(lk) {
			return ix
		}
	}
	return nil
}

// HasIndex reports whether a ready index exists on col that can serve
// equality (needRange false) or range (needRange true) probes.
func (m *Map) HasIndex(col string, needRange bool) bool {
	for _, ix := range m.indexSet() {
		if ix.col != col || !ix.ready.Load() {
			continue
		}
		if needRange && ix.kind != IndexBTree {
			continue
		}
		return true
	}
	return false
}

// CreateIndex builds a secondary index on col over every partition and
// registers it for inline maintenance. extract may be nil (defaults to
// AsRow(value).Field(col); see ValueIndexer). Creating the same
// (col, kind) twice returns the existing index; a second index on the
// same column with a different kind is rejected.
func (m *Map) CreateIndex(col string, kind IndexKind, extract ValueIndexer) (*Index, error) {
	if col == "" {
		return nil, fmt.Errorf("kv: CreateIndex on %q: empty column", m.name)
	}
	m.ixMu.Lock()
	defer m.ixMu.Unlock()
	for _, have := range m.indexSet() {
		if have.col == col {
			if have.kind == kind {
				return have, nil
			}
			return nil, fmt.Errorf("kv: CreateIndex on %q: column %q already has a %s index", m.name, col, have.kind)
		}
	}
	ix := &Index{
		m:       m,
		col:     col,
		kind:    kind,
		extract: extract,
		parts:   make([]*indexPart, m.store.part.Count()),
		maint:   metrics.NewHistogram(),
	}
	for p := range ix.parts {
		ix.parts[p] = newIndexPart()
	}
	// Publish first so concurrent writers maintain the new index, then
	// build each partition under its segment lock — the build rescans
	// whatever raced it, so the end state is exactly the entries map.
	old := m.indexSet()
	next := make([]*Index, len(old)+1)
	copy(next, old)
	next[len(old)] = ix
	m.indexes.Store(&next)
	for p, seg := range m.segs {
		seg.mu.Lock()
		ix.rebuildLocked(p, seg.entries)
		seg.mu.Unlock()
	}
	ix.ready.Store(true)
	return ix, nil
}

// Indexes returns the map's indexes in creation order.
func (m *Map) Indexes() []*Index { return m.indexSet() }

// ScanPartitionIndexed serves a partition scan from an index: candidates
// are gathered under the segment read lock (same-kind matches plus the
// foreign-kind and odd safety nets — a superset of what a full scan would
// examine for the same predicate), then filtered and streamed outside the
// lock exactly like ScanPartitionWith. It reports false — and touches
// nothing — when no ready index can serve the lookup; the caller falls
// back to a full scan.
func (m *Map) ScanPartitionIndexed(p int, lk IndexLookup, o ScanOpts, fn func(Entry) bool) bool {
	ix := m.indexFor(lk)
	if ix == nil {
		return false
	}
	seg := m.segs[p]
	seg.mu.RLock()
	var entries []Entry
	seen := make(map[string]struct{})
	ix.gatherLocked(p, lk, func(ks string) {
		if _, dup := seen[ks]; dup {
			return
		}
		seen[ks] = struct{}{}
		if e, ok := seg.entries[ks]; ok {
			entries = append(entries, e)
		}
	})
	seg.mu.RUnlock()
	ix.lookups.Add(1)
	if st := m.store.statsFor(p); st != nil {
		st.scans.Inc()
	}
	for i, e := range entries {
		if o.Done != nil && i%doneCheckEvery == 0 {
			select {
			case <-o.Done:
				return true
			default:
			}
		}
		if o.Filter != nil && !o.Filter(e) {
			continue
		}
		if !fn(e) {
			return true
		}
	}
	return true
}

// EstimateLookup returns the expected candidate count of the lookup over
// the whole map (all partitions), and whether a ready index can serve it.
// The planner uses it to pick the cheapest access path.
func (m *Map) EstimateLookup(lk IndexLookup) (int64, bool) {
	ix := m.indexFor(lk)
	if ix == nil {
		return 0, false
	}
	var n int64
	for p, seg := range m.segs {
		seg.mu.RLock()
		n += ix.estimateLocked(p, lk)
		seg.mu.RUnlock()
	}
	return n, true
}

// rebuildIndexesLocked rebuilds every index's slice of partition p from
// the current entries map; the caller holds seg(p)'s write lock.
func (m *Map) rebuildIndexesLocked(p int, entries map[string]Entry) {
	for _, ix := range m.indexSet() {
		ix.rebuildLocked(p, entries)
	}
}

// RebuildPartitionIndexes re-derives every map's indexes for partition p
// from the current entries — the hook membership changes call after a
// partition's entries were replaced wholesale (migration flip, backup
// promotion), where inline maintenance never saw the new entries.
func (s *Store) RebuildPartitionIndexes(p int) {
	s.mu.RLock()
	maps := make([]*Map, 0, len(s.maps))
	for _, m := range s.maps {
		maps = append(maps, m)
	}
	s.mu.RUnlock()
	for _, m := range maps {
		hasIx, hasTaps := len(m.indexSet()) > 0, len(m.tapSet()) > 0
		if !hasIx && !hasTaps {
			continue
		}
		seg := m.segs[p]
		seg.mu.Lock()
		if hasIx {
			m.rebuildIndexesLocked(p, seg.entries)
		}
		// Arrangements re-derive the same way the indexes do: the seat
		// may have flipped without inline maintenance seeing the entries.
		if hasTaps {
			seg.seq++
			m.notifyReset(p)
		}
		seg.mu.Unlock()
	}
}

// IndexInfo is the observable state of one index (sys.indexes).
type IndexInfo struct {
	Map      string
	Column   string
	Kind     string
	Entries  int64 // live (entry, value) references incl. the odd set
	Bytes    int64 // approximate memory footprint
	Lookups  int64
	MaintOps int64
	MaintP50 time.Duration
	MaintP99 time.Duration
}

// IndexInfos returns a point-in-time view of every index in the store,
// sorted by map then column.
func (s *Store) IndexInfos() []IndexInfo {
	s.mu.RLock()
	maps := make([]*Map, 0, len(s.maps))
	for _, m := range s.maps {
		maps = append(maps, m)
	}
	s.mu.RUnlock()
	var out []IndexInfo
	for _, m := range maps {
		for _, ix := range m.indexSet() {
			info := IndexInfo{
				Map:      m.name,
				Column:   ix.col,
				Kind:     ix.kind.String(),
				Lookups:  ix.lookups.Load(),
				MaintP50: ix.maint.Quantile(0.50),
				MaintP99: ix.maint.Quantile(0.99),
			}
			for p, seg := range m.segs {
				seg.mu.RLock()
				ip := ix.parts[p]
				info.Entries += ip.refTotal
				info.Bytes += ip.bytes
				info.MaintOps += ip.maintOps
				seg.mu.RUnlock()
			}
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Map != out[j].Map {
			return out[i].Map < out[j].Map
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// ixMu and indexes live on Map (declared here to keep the index machinery
// in one file): indexes is the atomically published index set, ixMu
// serializes CreateIndex calls.
type mapIndexState struct {
	ixMu    sync.Mutex
	indexes atomic.Pointer[[]*Index]
}
