// Package kv implements the partitioned in-memory key-value store that
// plays the role of Hazelcast IMDG in the paper: the state backend that
// S-QUERY exposes to external queries. Data is split into partitions by the
// shared partitioner (see internal/partition); each named map stores its
// entries per partition, guarded by striped key-level locks — the same
// locking S-QUERY uses to synchronise live-state updates against concurrent
// reads (§VII, read committed discussion).
//
// The store is cluster-wide; callers address it through a NodeView, which
// identifies the calling node so that operations on partitions owned by a
// different node pay the (simulated) network cost. Operator instances use
// the view of the node they are scheduled on — with co-located scheduling
// their state operations are always local — while external query clients
// use a client view that is remote to every node.
package kv

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"squery/internal/metrics"
	"squery/internal/partition"
	"squery/internal/transport"
	"squery/internal/wire"
)

// ClientNode is the pseudo node id used by external clients (the query
// system); it is remote to every store node.
const ClientNode = transport.ClientNode

// FaultHook is the fault-injection seam, re-exported from the transport
// layer where it now lives: faults happen to the network, not to the
// store. See transport.FaultHook for the contract. The hook is consulted
// only on the fallible access paths the query layer uses (CheckAccess /
// CheckBackupAccess) — the data plane's co-located state operations never
// route through it, so injected faults degrade queries without
// corrupting processing.
type FaultHook = transport.FaultHook

// Store is a cluster-wide collection of named partitioned maps.
type Store struct {
	part       partition.Partitioner
	assign     *partition.Assignment
	tr         transport.Transport
	replicated bool

	// stats, when set, is the per-partition instrument set (indexed by
	// partition). Swapped atomically so SetMetrics is safe against
	// in-flight operations; nil disables all accounting.
	stats atomic.Pointer[[]*partStats]

	// migrating flags partitions whose handoff is in flight; fenced
	// writers bounce off them (see migration.go).
	migrating []atomic.Bool

	// Fencing counters (see FenceStats).
	fenceRejects atomic.Int64
	fenceRetries atomic.Int64
	fenceForced  atomic.Int64

	mu   sync.RWMutex
	maps map[string]*Map
}

// partStats is the resolved instrument set of one partition, keyed
// ("kv", "p<N>") in the registry. Resolution happens once at SetMetrics
// time so the data path never pays a registry lookup.
type partStats struct {
	gets       *metrics.Counter
	sets       *metrics.Counter
	deletes    *metrics.Counter
	scans      *metrics.Counter
	lockWaits  *metrics.Counter
	lockWaitNs *metrics.Counter
}

// NewStore creates a store over the given partitioning and assignment.
// All inter-node operations flow through tr; nil selects a free (zero
// latency, still accounted) simulated transport.
func NewStore(p partition.Partitioner, a *partition.Assignment, tr transport.Transport) *Store {
	if a.Partitions() != p.Count() {
		panic(fmt.Sprintf("kv: assignment has %d partitions, partitioner %d", a.Partitions(), p.Count()))
	}
	if tr == nil {
		tr = transport.NewSim(transport.SimConfig{})
	}
	return &Store{
		part:      p,
		assign:    a,
		tr:        tr,
		migrating: make([]atomic.Bool, p.Count()),
		maps:      make(map[string]*Map),
	}
}

// Transport returns the transport the store sends through.
func (s *Store) Transport() transport.Transport { return s.tr }

// Partitioner returns the store's partitioner.
func (s *Store) Partitioner() partition.Partitioner { return s.part }

// Assignment returns the partition-to-node assignment.
func (s *Store) Assignment() *partition.Assignment { return s.assign }

// GetMap returns the named map, creating it if absent.
func (s *Store) GetMap(name string) *Map {
	s.mu.RLock()
	m := s.maps[name]
	s.mu.RUnlock()
	if m != nil {
		return m
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if m = s.maps[name]; m == nil {
		m = newMap(s, name)
		s.maps[name] = m
	}
	return m
}

// HasMap reports whether a map with this name exists (has been created).
func (s *Store) HasMap(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.maps[name]
	return ok
}

// MapNames returns the names of all maps in the store, sorted.
func (s *Store) MapNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.maps))
	for n := range s.maps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropMap removes the named map and its data.
func (s *Store) DropMap(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.maps, name)
}

// ClearMap empties the named map's data — every entry in every primary
// and backup partition — while keeping the map object and its index
// *definitions*: indexes are schema, not state, so their postings are
// reset alongside the entries but the indexes stay registered and
// maintained. Recovery paths that wipe never-committed live state use
// this instead of DropMap, which would silently drop the table's indexes
// with it.
func (s *Store) ClearMap(name string) {
	s.mu.RLock()
	m := s.maps[name]
	s.mu.RUnlock()
	if m == nil {
		return
	}
	for p, seg := range m.segs {
		seg.mu.Lock()
		seg.entries = make(map[string]Entry)
		m.rebuildIndexesLocked(p, seg.entries)
		seg.seq++
		m.notifyReset(p)
		seg.mu.Unlock()
	}
	for _, seg := range m.backups {
		seg.mu.Lock()
		seg.entries = make(map[string]Entry)
		seg.mu.Unlock()
	}
}

// View returns a NodeView for operations issued from the given node.
// Use ClientNode for external clients.
func (s *Store) View(node int) NodeView {
	return NodeView{store: s, node: node}
}

// SetMetrics installs (or, with nil, removes) per-partition operation
// accounting: get/set/delete/scan counts plus lock-wait events and summed
// lock-wait nanoseconds under ("kv", "p<N>"). Lock waits are measured only
// on the contended path — a failed TryLock — so the uncontended hot path
// pays one counter increment per operation and nothing else.
func (s *Store) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.stats.Store(nil)
		return
	}
	sl := make([]*partStats, s.part.Count())
	for p := range sl {
		id := "p" + strconv.Itoa(p)
		sl[p] = &partStats{
			gets:       reg.Counter("kv", id, "gets"),
			sets:       reg.Counter("kv", id, "sets"),
			deletes:    reg.Counter("kv", id, "deletes"),
			scans:      reg.Counter("kv", id, "scans"),
			lockWaits:  reg.Counter("kv", id, "lock_waits"),
			lockWaitNs: reg.Counter("kv", id, "lock_wait_ns"),
		}
	}
	s.stats.Store(&sl)
}

// statsFor returns partition p's instruments, or nil when disabled.
func (s *Store) statsFor(p int) *partStats {
	sl := s.stats.Load()
	if sl == nil {
		return nil
	}
	return (*sl)[p]
}

// lockWith acquires lk, charging contention to st only on the slow path:
// an uncontended (or uninstrumented) acquisition is a plain Lock.
func lockWith(lk *sync.Mutex, st *partStats) {
	if st == nil {
		lk.Lock()
		return
	}
	if lk.TryLock() {
		return
	}
	start := time.Now()
	lk.Lock()
	st.lockWaits.Inc()
	st.lockWaitNs.Add(time.Since(start).Nanoseconds())
}

// SetFaultHook installs (or clears, with nil) the fault-injection hook
// on the store's transport.
func (s *Store) SetFaultHook(h FaultHook) { s.tr.SetFaultHook(h) }

// CheckAccess reports whether node `from` can currently reach the primary
// copy of partition p, consulting the transport's fault hook. A stalled
// partition blocks here for the injected delay; an unreachable one
// returns a typed error wrapping the hook's. Local access (from == owner)
// is never faulted — a node cannot be partitioned away from itself.
func (s *Store) CheckAccess(from, p int) error {
	owner := s.assign.Owner(p)
	if err := s.tr.Check(from, owner, p); err != nil {
		return fmt.Errorf("kv: partition %d (node %d) unreachable from node %d: %w", p, owner, from, err)
	}
	return nil
}

// CheckBackupAccess is CheckAccess against the partition's backup copy —
// the degraded read path when the primary is severed.
func (s *Store) CheckBackupAccess(from, p int) error {
	backup := s.assign.Backup(p)
	if err := s.tr.Check(from, backup, p); err != nil {
		return fmt.Errorf("kv: backup of partition %d (node %d) unreachable from node %d: %w", p, backup, from, err)
	}
	return nil
}

// Entry is one key-value pair in a map.
type Entry struct {
	Key   partition.Key
	Value any
}

// lockStripes is the number of key-lock stripes per partition segment.
// Striping approximates per-key locks without per-key mutex allocation.
const lockStripes = 8

// segment is the slice of one map living in one partition.
type segment struct {
	mu      sync.RWMutex // guards the entries map structure
	stripes [lockStripes]sync.Mutex
	entries map[string]Entry // canonical key string -> entry
	// seq counts mutations of this segment, advanced under mu's write
	// lock and never reset — the per-partition watermark of the change
	// stream tap (see tap.go). A wholesale entry replacement bumps it
	// too, so a tap consumer that re-snapshots after OnReset can still
	// order the snapshot against buffered deltas.
	seq uint64
}

func (g *segment) stripe(ks string) *sync.Mutex {
	var h uint32
	for i := 0; i < len(ks); i++ {
		h = h*31 + uint32(ks[i])
	}
	return &g.stripes[h%lockStripes]
}

// Map is a named, partitioned key-value map. With replication enabled,
// every partition has a synchronously maintained backup copy (notionally
// on the partition's backup node).
type Map struct {
	store   *Store
	name    string
	segs    []*segment
	backups []*segment
	mapIndexState
	mapTapState
}

func newMap(s *Store, name string) *Map {
	m := &Map{store: s, name: name, segs: make([]*segment, s.part.Count())}
	for i := range m.segs {
		m.segs[i] = &segment{entries: make(map[string]Entry)}
	}
	if s.replicated {
		m.backups = make([]*segment, s.part.Count())
		for i := range m.backups {
			m.backups[i] = &segment{entries: make(map[string]Entry)}
		}
	}
	return m
}

// Name returns the map's name. Live-state maps are named after their
// operator; snapshot maps use the snapshot_<operator> convention (§V.B).
func (m *Map) Name() string { return m.name }

// Store returns the store this map belongs to.
func (m *Map) Store() *Store { return m.store }

// PartitionOf returns the partition owning the key.
func (m *Map) PartitionOf(key partition.Key) int { return m.store.part.Of(key) }

// put stores the entry, charging network cost from the calling node (to
// the owner the view believes in) and, for fenced views, enforcing the
// epoch fence under the segment lock. force skips the fence — the final
// attempt of an exhausted retry loop.
func (m *Map) put(v NodeView, key partition.Key, value any, force bool) error {
	p := m.store.part.Of(key)
	if owner := v.ownerOf(p); v.node != owner {
		m.store.tr.Send(transport.Msg{From: v.node, To: owner, Ops: 1, Bytes: wire.Size(key) + wire.Size(value)})
	}
	st := m.store.statsFor(p)
	seg := m.segs[p]
	ks := partition.KeyString(key)
	lk := seg.stripe(ks)
	lockWith(lk, st)
	seg.mu.Lock()
	if !force {
		if err := m.store.checkFence(v.fence, p); err != nil {
			seg.mu.Unlock()
			lk.Unlock()
			return err
		}
	}
	e := Entry{Key: key, Value: value}
	if ixs := m.indexSet(); len(ixs) > 0 {
		old, had := seg.entries[ks]
		seg.entries[ks] = e
		for _, ix := range ixs {
			ix.update(p, ks, old.Value, had, value, true)
		}
	} else {
		seg.entries[ks] = e
	}
	if taps := m.tapSet(); len(taps) > 0 {
		seg.seq++
		m.emitDelta(taps, p, seg.seq, ks, key, value, false)
	}
	seg.mu.Unlock()
	lk.Unlock()
	if st != nil {
		st.sets.Inc()
	}
	if m.store.replicated {
		m.replicatePut(p, ks, e)
	}
	return nil
}

// get loads the value for key; ok is false if absent. Reads are never
// fenced: against shared-memory segments a stale-owner read is just a
// misrouted (and so charged) hop, not a split-brain hazard — only writes
// can create two half-owners, so only writes carry the epoch stamp.
func (m *Map) get(v NodeView, key partition.Key) (any, bool) {
	node := v.node
	p := m.store.part.Of(key)
	if owner := v.ownerOf(p); node != owner {
		m.store.tr.Send(transport.Msg{From: node, To: owner, Ops: 1, Bytes: wire.Size(key)})
	}
	st := m.store.statsFor(p)
	seg := m.segs[p]
	ks := partition.KeyString(key)
	lk := seg.stripe(ks)
	lockWith(lk, st)
	seg.mu.RLock()
	e, ok := seg.entries[ks]
	seg.mu.RUnlock()
	lk.Unlock()
	if st != nil {
		st.gets.Inc()
	}
	if !ok {
		return nil, false
	}
	return e.Value, true
}

// delete removes the key, enforcing the epoch fence like put; present
// reports whether the key existed (meaningful only when err is nil).
func (m *Map) delete(v NodeView, key partition.Key, force bool) (present bool, err error) {
	p := m.store.part.Of(key)
	if owner := v.ownerOf(p); v.node != owner {
		m.store.tr.Send(transport.Msg{From: v.node, To: owner, Ops: 1, Bytes: wire.Size(key)})
	}
	st := m.store.statsFor(p)
	seg := m.segs[p]
	ks := partition.KeyString(key)
	lk := seg.stripe(ks)
	lockWith(lk, st)
	seg.mu.Lock()
	if !force {
		if err := m.store.checkFence(v.fence, p); err != nil {
			seg.mu.Unlock()
			lk.Unlock()
			return false, err
		}
	}
	old, ok := seg.entries[ks]
	delete(seg.entries, ks)
	if ok {
		for _, ix := range m.indexSet() {
			ix.update(p, ks, old.Value, true, nil, false)
		}
		if taps := m.tapSet(); len(taps) > 0 {
			seg.seq++
			m.emitDelta(taps, p, seg.seq, ks, key, nil, true)
		}
	}
	seg.mu.Unlock()
	lk.Unlock()
	if st != nil {
		st.deletes.Inc()
	}
	if m.store.replicated {
		m.replicateDelete(p, ks)
	}
	return ok, nil
}

// Size returns the total number of entries across all partitions.
func (m *Map) Size() int {
	n := 0
	for _, seg := range m.segs {
		seg.mu.RLock()
		n += len(seg.entries)
		seg.mu.RUnlock()
	}
	return n
}

// Clear removes all entries (and their backup copies).
func (m *Map) Clear() {
	for p, seg := range m.segs {
		seg.mu.Lock()
		seg.entries = make(map[string]Entry)
		m.rebuildIndexesLocked(p, seg.entries)
		seg.seq++
		m.notifyReset(p)
		seg.mu.Unlock()
	}
	for _, seg := range m.backups {
		seg.mu.Lock()
		seg.entries = make(map[string]Entry)
		seg.mu.Unlock()
	}
}

// ScanOpts tunes a pushdown-aware partition scan.
type ScanOpts struct {
	// Filter, when non-nil, runs against every entry on the owning node;
	// only accepted entries reach fn. This is the predicate-pushdown hook:
	// a selective query filters where the data lives instead of shipping
	// every row across the (simulated) network.
	Filter func(Entry) bool
	// Done, when non-nil, cancels the scan once closed — the early-stop
	// hook for LIMIT queries and failed sibling scans. Checked between
	// entries, so an in-flight fn call always completes.
	Done <-chan struct{}
}

// ScanPartition calls fn for a point-in-time copy of every entry in
// partition p. Copy-then-iterate keeps the lock hold time proportional to
// partition size, never to fn's cost — queries must not stall processing.
func (m *Map) ScanPartition(p int, fn func(Entry) bool) {
	m.ScanPartitionWith(p, ScanOpts{}, fn)
}

// ScanPartitionWith is ScanPartition with node-side filtering and
// cancellation. The filter and the done check both run after the copy,
// outside the segment lock — the lock-hold invariant is unchanged no
// matter how expensive the pushed predicate is.
func (m *Map) ScanPartitionWith(p int, o ScanOpts, fn func(Entry) bool) {
	if st := m.store.statsFor(p); st != nil {
		st.scans.Inc()
	}
	scanSeg(m.segs[p], o, fn)
}

// ScanPartitionBackup is ScanPartition against the partition's backup
// copy — the degraded read path a query falls back to when the primary is
// unreachable. Without replication it visits nothing.
func (m *Map) ScanPartitionBackup(p int, fn func(Entry) bool) {
	m.ScanPartitionBackupWith(p, ScanOpts{}, fn)
}

// ScanPartitionBackupWith is ScanPartitionWith against the backup copy,
// so a degraded (fallback) read still benefits from pushdown.
func (m *Map) ScanPartitionBackupWith(p int, o ScanOpts, fn func(Entry) bool) {
	if m.backups == nil {
		return
	}
	scanSeg(m.backups[p], o, fn)
}

// doneCheckEvery is how many entries a scan processes between polls of
// the Done channel.
const doneCheckEvery = 32

func scanSeg(seg *segment, o ScanOpts, fn func(Entry) bool) {
	seg.mu.RLock()
	entries := make([]Entry, 0, len(seg.entries))
	for _, e := range seg.entries {
		entries = append(entries, e)
	}
	seg.mu.RUnlock()
	for i, e := range entries {
		if o.Done != nil && i%doneCheckEvery == 0 {
			select {
			case <-o.Done:
				return
			default:
			}
		}
		if o.Filter != nil && !o.Filter(e) {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// NodeView is the handle a specific node (or external client) uses to
// operate on the store. All network accounting flows through it. A view
// obtained from FencedView additionally stamps every write with the epoch
// of a cached partition-table snapshot and transparently retries writes
// the store rejects as stale (see migration.go).
type NodeView struct {
	store *Store
	node  int
	fence *fenceState
}

// Node returns the node this view represents.
func (v NodeView) Node() int { return v.node }

// Store returns the underlying store.
func (v NodeView) Store() *Store { return v.store }

// ChargeHop charges the network cost of one message from this view's node
// to the given node. Callers that bypass per-key accounting (e.g. a query
// engine scanning whole partitions per node) use it to keep the network
// model honest.
func (v NodeView) ChargeHop(to int) {
	v.store.tr.Send(transport.Msg{From: v.node, To: to})
}

// ChargeBatch charges one message from this view's node to the given
// node carrying ops logical operations and bytes payload bytes — the
// scatter-gather accounting the SQL executor uses for result rows shipped
// back from a node in one framed response.
func (v NodeView) ChargeBatch(to, ops, bytes int) {
	v.store.tr.Send(transport.Msg{From: v.node, To: to, Ops: ops, Bytes: bytes})
}

// Put stores value under key in the named map, retrying through the epoch
// fence for fenced views.
func (v NodeView) Put(mapName string, key partition.Key, value any) {
	m := v.store.GetMap(mapName)
	v.fenced(func(force bool) error { return m.put(v, key, value, force) })
}

// Get loads the value under key from the named map.
func (v NodeView) Get(mapName string, key partition.Key) (any, bool) {
	return v.store.GetMap(mapName).get(v, key)
}

// Delete removes key from the named map; it reports whether the key was
// present.
func (v NodeView) Delete(mapName string, key partition.Key) bool {
	m := v.store.GetMap(mapName)
	var present bool
	v.fenced(func(force bool) error {
		ok, err := m.delete(v, key, force)
		if err == nil {
			present = ok
		}
		return err
	})
	return present
}

// GetAll loads the values for all keys, preserving order; missing keys
// yield nil entries in the result. It is the batched read path: one
// network hop per distinct remote node touched and one lock acquisition
// per partition rather than per key — the getAll batching a distributed
// map offers. (Reads only need the segment read-lock: writers hold the
// segment write-lock for the actual mutation, so a reader can never
// observe a torn entry; the per-key stripe locks serialize only the
// single-key read-modify cycles.)
func (v NodeView) GetAll(mapName string, keys []partition.Key) []any {
	m := v.store.GetMap(mapName)
	// Charge one message per remote node involved, carrying that node's
	// share of the keys. Nodes are charged in first-touch order so the
	// transport's jitter sequence stays deterministic for a given key
	// order.
	var order []int
	counts := make(map[int]int)
	for _, k := range keys {
		owner := v.store.assign.Owner(v.store.part.Of(k))
		if owner == v.node {
			continue
		}
		if counts[owner] == 0 {
			order = append(order, owner)
		}
		counts[owner]++
	}
	for _, owner := range order {
		v.store.tr.Send(transport.Msg{From: v.node, To: owner, Ops: counts[owner]})
	}
	out := make([]any, len(keys))
	for i, k := range keys {
		seg := m.segs[v.store.part.Of(k)]
		seg.mu.RLock()
		e, ok := seg.entries[partition.KeyString(k)]
		seg.mu.RUnlock()
		if ok {
			out[i] = e.Value
		}
	}
	return out
}

// Scan streams a point-in-time copy of every entry in the map to fn,
// partition by partition, charging one network hop per remote node. fn
// returning false stops the scan.
func (v NodeView) Scan(mapName string, fn func(Entry) bool) {
	m := v.store.GetMap(mapName)
	// One message per remote node, carrying its partition count as the
	// operation count.
	var order []int
	counts := make(map[int]int)
	for p := 0; p < v.store.part.Count(); p++ {
		owner := v.store.assign.Owner(p)
		if owner == v.node {
			continue
		}
		if counts[owner] == 0 {
			order = append(order, owner)
		}
		counts[owner]++
	}
	for _, owner := range order {
		v.store.tr.Send(transport.Msg{From: v.node, To: owner, Ops: counts[owner]})
	}
	stop := false
	for p := 0; p < v.store.part.Count() && !stop; p++ {
		m.ScanPartition(p, func(e Entry) bool {
			if !fn(e) {
				stop = true
				return false
			}
			return true
		})
	}
}

// Entries returns a point-in-time copy of all entries in the map.
func (v NodeView) Entries(mapName string) []Entry {
	var out []Entry
	v.Scan(mapName, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}
