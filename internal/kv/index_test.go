package kv

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"squery/internal/partition"
)

// collectIndexed gathers the indexed scan's output across every partition;
// served is false if any partition could not be served from an index.
func collectIndexed(m *Map, lk IndexLookup, filter func(Entry) bool) (map[string]any, bool) {
	out := map[string]any{}
	for p := 0; p < m.store.part.Count(); p++ {
		ok := m.ScanPartitionIndexed(p, lk, ScanOpts{Filter: filter}, func(e Entry) bool {
			out[partition.KeyString(e.Key)] = e.Value
			return true
		})
		if !ok {
			return nil, false
		}
	}
	return out, true
}

func collectFull(m *Map, filter func(Entry) bool) map[string]any {
	out := map[string]any{}
	for p := 0; p < m.store.part.Count(); p++ {
		m.ScanPartitionWith(p, ScanOpts{Filter: filter}, func(e Entry) bool {
			out[partition.KeyString(e.Key)] = e.Value
			return true
		})
	}
	return out
}

func sameResults(t *testing.T, label string, idx, full map[string]any) {
	t.Helper()
	if len(idx) != len(full) {
		t.Fatalf("%s: indexed scan found %d rows, full scan %d", label, len(idx), len(full))
	}
	for k := range full {
		if _, ok := idx[k]; !ok {
			t.Fatalf("%s: indexed scan missed key %s", label, k)
		}
	}
}

func asFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

func zoneIs(want string) func(Entry) bool {
	return func(e Entry) bool {
		f, ok := AsRow(e.Value).Field("zone")
		if !ok {
			return false
		}
		s, ok := f.(string)
		return ok && s == want
	}
}

func latBetween(lo, hi float64) func(Entry) bool {
	return func(e Entry) bool {
		f, ok := AsRow(e.Value).Field("lat")
		if !ok {
			return false
		}
		x, ok := asFloat(f)
		return ok && x >= lo && x <= hi
	}
}

// TestIndexScanParity drives a map with hash and B-tree indexes through
// puts, overwrites, deletes and batches, and asserts indexed scans agree
// with full scans under the same filter — the index may only change how
// candidates are found, never which rows come out.
func TestIndexScanParity(t *testing.T) {
	s := testStore()
	m := s.GetMap("orders")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateIndex("lat", IndexBTree, nil); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	rng := rand.New(rand.NewSource(42))
	zones := []string{"z0", "z1", "z2", "z3"}
	for i := 0; i < 2000; i++ {
		v.Put("orders", i, MapRow{
			"zone": zones[rng.Intn(len(zones))],
			"lat":  50 + rng.Float64()*100,
		})
	}
	// Overwrites that move rows between postings.
	for i := 0; i < 500; i++ {
		k := rng.Intn(2000)
		v.Put("orders", k, MapRow{
			"zone": zones[rng.Intn(len(zones))],
			"lat":  50 + rng.Float64()*100,
		})
	}
	// Deletes, unary and batched.
	for i := 0; i < 200; i++ {
		v.Delete("orders", rng.Intn(2000))
	}
	ops := make([]Op, 0, 300)
	for i := 0; i < 300; i++ {
		if rng.Intn(3) == 0 {
			ops = append(ops, Op{Key: rng.Intn(2000), Delete: true})
		} else {
			ops = append(ops, Op{Key: rng.Intn(2000), Value: MapRow{
				"zone": zones[rng.Intn(len(zones))],
				"lat":  50 + rng.Float64()*100,
			}})
		}
	}
	v.PutBatch("orders", ops)
	// Read-modify-write batch (the snapshot-chain write path).
	keys := make([]partition.Key, 100)
	for i := range keys {
		keys[i] = rng.Intn(2000)
	}
	v.ApplyBatch("orders", keys, func(i int, key partition.Key, cur any, ok bool) (any, bool) {
		if !ok || rng.Intn(5) == 0 {
			return nil, false
		}
		r := cur.(MapRow)
		return MapRow{"zone": r["zone"], "lat": 50 + rng.Float64()*100}, true
	})

	for _, z := range zones {
		idx, served := collectIndexed(m, IndexLookup{Col: "zone", Eq: z}, zoneIs(z))
		if !served {
			t.Fatalf("zone=%s not served from index", z)
		}
		sameResults(t, "zone="+z, idx, collectFull(m, zoneIs(z)))
	}
	for _, r := range [][2]float64{{60, 80}, {50, 150}, {149, 200}, {0, 49}} {
		lk := IndexLookup{Col: "lat", Range: true, Lo: r[0], Hi: r[1]}
		idx, served := collectIndexed(m, lk, latBetween(r[0], r[1]))
		if !served {
			t.Fatalf("lat in [%v,%v] not served from index", r[0], r[1])
		}
		sameResults(t, fmt.Sprintf("lat in [%v,%v]", r[0], r[1]), idx, collectFull(m, latBetween(r[0], r[1])))
	}
	// Half-open ranges.
	idx, served := collectIndexed(m, IndexLookup{Col: "lat", Range: true, Lo: 100.0}, latBetween(100, 1e9))
	if !served {
		t.Fatal("lat >= 100 not served")
	}
	sameResults(t, "lat>=100", idx, collectFull(m, latBetween(100, 1e9)))
}

// TestIndexIntFloatCoercion: SQL equality coerces ints and floats, so an
// index over int-valued cells must answer float probes (and vice versa),
// including range bounds of mixed numeric types.
func TestIndexIntFloatCoercion(t *testing.T) {
	s := testStore()
	m := s.GetMap("m")
	if _, err := m.CreateIndex("n", IndexBTree, nil); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	for i := 0; i < 100; i++ {
		v.Put("m", i, MapRow{"n": i}) // stored as int
	}
	eq := func(want float64) func(Entry) bool {
		return func(e Entry) bool {
			f, _ := AsRow(e.Value).Field("n")
			x, ok := asFloat(f)
			return ok && x == want
		}
	}
	idx, served := collectIndexed(m, IndexLookup{Col: "n", Eq: float64(42)}, eq(42))
	if !served {
		t.Fatal("float probe over int cells not served")
	}
	if len(idx) != 1 {
		t.Fatalf("n = 42.0 over int cells found %d rows, want 1", len(idx))
	}
	lk := IndexLookup{Col: "n", Range: true, Lo: float64(10), Hi: 19}
	idx, served = collectIndexed(m, lk, latWith("n", 10, 19))
	if !served {
		t.Fatal("mixed-type range bounds not served")
	}
	if len(idx) != 10 {
		t.Fatalf("n in [10.0, 19] found %d rows, want 10", len(idx))
	}
}

func latWith(col string, lo, hi float64) func(Entry) bool {
	return func(e Entry) bool {
		f, ok := AsRow(e.Value).Field(col)
		if !ok {
			return false
		}
		x, ok := asFloat(f)
		return ok && x >= lo && x <= hi
	}
}

// TestIndexOddAndForeignKinds: rows with a missing, nil or
// differently-typed cell must still reach the filter — a full scan would
// have examined them (and possibly errored), so the index may not hide
// them.
func TestIndexOddAndForeignKinds(t *testing.T) {
	s := testStore()
	m := s.GetMap("m")
	if _, err := m.CreateIndex("n", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	v.Put("m", "num", MapRow{"n": 7})
	v.Put("m", "str", MapRow{"n": "seven"}) // foreign kind
	v.Put("m", "missing", MapRow{"other": 1})
	v.Put("m", "nil", MapRow{"n": nil})
	v.Put("m", "odd", MapRow{"n": []int{1, 2}}) // unindexable type

	seenAll := func(e Entry) bool { return true }
	idx, served := collectIndexed(m, IndexLookup{Col: "n", Eq: 7}, seenAll)
	if !served {
		t.Fatal("not served")
	}
	for _, want := range []string{"num", "str", "missing", "nil", "odd"} {
		ks := partition.KeyString(want)
		if _, ok := idx[ks]; !ok {
			t.Fatalf("candidate set for n=7 is missing %q: a full scan would have examined it", want)
		}
	}
	// A homogeneous probe over a different value still excludes same-kind
	// non-matches: key "num" must NOT be a candidate for n=8.
	idx, _ = collectIndexed(m, IndexLookup{Col: "n", Eq: 8}, seenAll)
	if _, ok := idx[partition.KeyString("num")]; ok {
		t.Fatal("same-kind non-match leaked into the candidate set")
	}
}

// TestIndexEstimate checks EstimateLookup tracks actual candidate counts.
func TestIndexEstimate(t *testing.T) {
	s := testStore()
	m := s.GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	for i := 0; i < 400; i++ {
		v.Put("m", i, MapRow{"zone": fmt.Sprintf("z%d", i%4)})
	}
	n, ok := m.EstimateLookup(IndexLookup{Col: "zone", Eq: "z1"})
	if !ok || n != 100 {
		t.Fatalf("EstimateLookup(zone=z1) = %d, %v; want 100, true", n, ok)
	}
	if _, ok := m.EstimateLookup(IndexLookup{Col: "nope", Eq: 1}); ok {
		t.Fatal("estimate served for unindexed column")
	}
	if _, ok := m.EstimateLookup(IndexLookup{Col: "zone", Range: true, Lo: "a", Hi: "z"}); ok {
		t.Fatal("range estimate served from a hash index")
	}
}

// TestIndexRebuildOnFailNode: backup promotion swaps a partition's entries
// wholesale; the indexes must be re-derived or every lookup after a
// failover would serve the dead node's postings.
func TestIndexRebuildOnFailNode(t *testing.T) {
	p := partition.New(partition.DefaultCount)
	s := NewStore(p, partition.Assign(p.Count(), 3), nil)
	if err := s.SetReplicated(); err != nil {
		t.Fatal(err)
	}
	m := s.GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	for i := 0; i < 500; i++ {
		v.Put("m", i, MapRow{"zone": fmt.Sprintf("z%d", i%4)})
	}
	var parts []int
	for q := 0; q < p.Count(); q++ {
		if s.assign.Owner(q) == 1 {
			parts = append(parts, q)
		}
	}
	s.FailNode(parts)
	idx, served := collectIndexed(m, IndexLookup{Col: "zone", Eq: "z2"}, zoneIs("z2"))
	if !served {
		t.Fatal("not served after failover")
	}
	sameResults(t, "post-failover zone=z2", idx, collectFull(m, zoneIs("z2")))
}

// TestIndexClear: Clear must reset the indexes along with the entries.
func TestIndexClear(t *testing.T) {
	s := testStore()
	m := s.GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	for i := 0; i < 100; i++ {
		v.Put("m", i, MapRow{"zone": "z"})
	}
	m.Clear()
	idx, served := collectIndexed(m, IndexLookup{Col: "zone", Eq: "z"}, nil)
	if !served || len(idx) != 0 {
		t.Fatalf("after Clear: served=%v rows=%d, want true, 0", served, len(idx))
	}
	infos := s.IndexInfos()
	if len(infos) != 1 || infos[0].Entries != 0 {
		t.Fatalf("after Clear: IndexInfos = %+v, want one index with 0 entries", infos)
	}
}

// TestCreateIndexConcurrentWrites builds an index while writers are live;
// publish-then-rebuild must end with the index exactly matching the map.
func TestCreateIndexConcurrentWrites(t *testing.T) {
	s := testStore()
	m := s.GetMap("m")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := s.View(0)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := w*10000 + rng.Intn(500)
				if rng.Intn(10) == 0 {
					v.Delete("m", k)
				} else {
					v.Put("m", k, MapRow{"zone": fmt.Sprintf("z%d", rng.Intn(4))})
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	idx, served := collectIndexed(m, IndexLookup{Col: "zone", Eq: "z3"}, zoneIs("z3"))
	if !served {
		t.Fatal("not served")
	}
	sameResults(t, "concurrent build zone=z3", idx, collectFull(m, zoneIs("z3")))
}

// TestIndexEpochFenceRegression: a writer holding a stale partition table
// must not be able to dirty an index across a migration flip. The
// partition is frozen, the stale write bounces (MigratingError →
// StaleEpochError path), the epoch flips and the index is rebuilt; the
// retried write lands once, fenced at the new epoch, and the index agrees
// with the map — with the forced backstop cold.
func TestIndexEpochFenceRegression(t *testing.T) {
	p := partition.New(partition.DefaultCount)
	s := NewStore(p, partition.Assign(p.Count(), 3), nil)
	m := s.GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	fv := s.FencedView(0)
	for i := 0; i < 200; i++ {
		fv.Put("m", i, MapRow{"zone": fmt.Sprintf("z%d", i%4)})
	}
	const key = 7
	part := m.PartitionOf(key)

	if !s.BeginPartitionMigration(part) {
		t.Fatal("could not freeze partition")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Stamped with the pre-flip epoch; bounces until thaw + refresh.
		fv.Put("m", key, MapRow{"zone": "moved"})
	}()
	time.Sleep(2 * time.Millisecond) // let the writer hit the fence
	s.assign.Apply([]partition.Change{{Partition: part, Owner: s.assign.Owner(part), Backup: s.assign.Backup(part)}})
	s.RebuildPartitionIndexes(part)
	s.EndPartitionMigration(part)
	<-done

	if f := s.FenceStats(); f.Rejects == 0 {
		t.Fatal("the stale write never bounced — the fence did not engage")
	} else if f.Forced != 0 {
		t.Fatalf("forced writes = %d, want 0", f.Forced)
	}
	idx, served := collectIndexed(m, IndexLookup{Col: "zone", Eq: "moved"}, zoneIs("moved"))
	if !served {
		t.Fatal("not served")
	}
	if len(idx) != 1 {
		t.Fatalf("zone=moved found %d rows in the rebuilt index, want exactly 1", len(idx))
	}
	sameResults(t, "post-flip", idx, collectFull(m, zoneIs("moved")))
	// And the old posting must not retain the key.
	old, _ := collectIndexed(m, IndexLookup{Col: "zone", Eq: "z3"}, zoneIs("z3"))
	if _, stale := old[partition.KeyString(key)]; stale {
		t.Fatal("stale posting survived the flip rebuild")
	}
}

// TestIndexInfos sanity-checks the sys.indexes source.
func TestIndexInfos(t *testing.T) {
	s := testStore()
	m := s.GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateIndex("lat", IndexBTree, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateIndex("zone", IndexBTree, nil); err == nil {
		t.Fatal("second index on the same column with a different kind was accepted")
	}
	if ix, err := m.CreateIndex("zone", IndexHash, nil); err != nil || ix == nil {
		t.Fatalf("re-creating the same index errored: %v", err)
	}
	v := s.View(0)
	for i := 0; i < 100; i++ {
		v.Put("m", i, MapRow{"zone": "z", "lat": float64(i)})
	}
	collectIndexed(m, IndexLookup{Col: "zone", Eq: "z"}, nil)
	infos := s.IndexInfos()
	if len(infos) != 2 {
		t.Fatalf("IndexInfos returned %d indexes, want 2", len(infos))
	}
	// Sorted by map, column: lat before zone.
	if infos[0].Column != "lat" || infos[0].Kind != "btree" {
		t.Fatalf("infos[0] = %+v, want lat/btree", infos[0])
	}
	z := infos[1]
	if z.Entries != 100 || z.Bytes <= 0 || z.MaintOps < 100 || z.Lookups == 0 {
		t.Fatalf("zone index info = %+v", z)
	}
}

// TestBTreeOrderAndCompaction exercises the tree directly: ordered range
// iteration across splits, and compaction after mass emptying.
func TestBTreeOrderAndCompaction(t *testing.T) {
	tr := &btree{kind: 'N'}
	rng := rand.New(rand.NewSource(1))
	keys := rng.Perm(5000)
	for _, k := range keys {
		p, isNew := tr.getOrInsert(numIxKey(float64(k)))
		if !isNew {
			t.Fatalf("duplicate insert for %d", k)
		}
		tr.live++
		p.add(fmt.Sprintf("k%d", k))
	}
	var got []uint64
	lo, hi := numIxKey(1000), numIxKey(1999)
	tr.ascendRange(&lo, &hi, func(it btItem) bool {
		got = append(got, it.k.num)
		return true
	})
	if len(got) != 1000 {
		t.Fatalf("range walk visited %d items, want 1000", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("range walk out of order")
		}
	}
	// Empty most postings; compaction must kick in and keep the rest.
	for k := 0; k < 4900; k++ {
		p := tr.get(numIxKey(float64(k)))
		p.remove(fmt.Sprintf("k%d", k))
		tr.live--
		tr.empty++
		tr.maybeCompact()
	}
	n := 0
	tr.each(func(it btItem) bool {
		if len(it.post.keys) > 0 {
			n++
		}
		return true
	})
	if n != 100 {
		t.Fatalf("%d live postings after compaction, want 100", n)
	}
	if tr.empty > tr.live {
		t.Fatalf("compaction never ran: empty=%d live=%d", tr.empty, tr.live)
	}
}

// TestClearMapKeepsIndexes: ClearMap wipes data but not schema — index
// definitions survive, postings reset, and inline maintenance resumes on
// the next write. (DropMap on a recovery path once silently discarded the
// table's indexes; the recreated map answered every probe with a full
// scan.)
func TestClearMapKeepsIndexes(t *testing.T) {
	s := testStore()
	m := s.GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	for i := 0; i < 100; i++ {
		v.Put("m", i, MapRow{"zone": fmt.Sprintf("z%d", i%4)})
	}
	s.ClearMap("m")
	infos := s.IndexInfos()
	if len(infos) != 1 || infos[0].Entries != 0 {
		t.Fatalf("after ClearMap: infos = %+v, want 1 index with 0 entries", infos)
	}
	if got := collectFull(m, nil); len(got) != 0 {
		t.Fatalf("after ClearMap: %d entries survived", len(got))
	}
	// New writes are indexed again.
	for i := 0; i < 40; i++ {
		v.Put("m", i, MapRow{"zone": fmt.Sprintf("z%d", i%4)})
	}
	lk := IndexLookup{Col: "zone", Eq: "z1"}
	idx, served := collectIndexed(m, lk, nil)
	if !served {
		t.Fatal("index did not serve after ClearMap")
	}
	if len(idx) != 10 {
		t.Fatalf("indexed probe found %d rows, want 10", len(idx))
	}
	// ClearMap on an unknown map is a no-op, not a panic.
	s.ClearMap("nosuch")
}

// TestIndexedPutAllocs gates the inline-maintenance allocation cost of an
// overwrite whose indexed column does not change — the common case on the
// operator update path. The single-value fast path extracts and compares
// old vs new keys with no slice boxing, so maintenance must add ZERO
// allocations over the unindexed put (itself 2: the key string and the
// boxed key).
func TestIndexedPutAllocs(t *testing.T) {
	s := testStore()
	row := MapRow{"zone": "z1"}
	v := s.View(0)
	v.Put("plain", 1, row)
	base := testing.AllocsPerRun(200, func() {
		v.Put("plain", 1, row)
	})
	m := s.GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		t.Fatal(err)
	}
	v.Put("m", 1, row)
	avg := testing.AllocsPerRun(200, func() {
		v.Put("m", 1, row)
	})
	if avg > base {
		t.Fatalf("indexed overwrite costs %.1f allocs/op, unindexed %.1f — maintenance must be allocation-free", avg, base)
	}
}

// BenchmarkIndexedPut measures the inline index maintenance overhead of
// the unary put path against BenchmarkPutUnary (same shape, no index) —
// `make bench-smoke` prints both so the write-overhead budget (<= 10%
// target on row values) is visible in CI logs.
func BenchmarkIndexedPut(b *testing.B) {
	_, v := benchStore()
	m := v.Store().GetMap("m")
	if _, err := m.CreateIndex("zone", IndexHash, nil); err != nil {
		b.Fatal(err)
	}
	rows := make([]MapRow, 4)
	for i := range rows {
		rows[i] = MapRow{"zone": fmt.Sprintf("z%d", i), "v": i}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Put("m", i%4096, rows[i%4])
	}
}

// BenchmarkUnindexedRowPut is the control for BenchmarkIndexedPut: same
// row values, no index.
func BenchmarkUnindexedRowPut(b *testing.B) {
	_, v := benchStore()
	rows := make([]MapRow, 4)
	for i := range rows {
		rows[i] = MapRow{"zone": fmt.Sprintf("z%d", i), "v": i}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Put("m", i%4096, rows[i%4])
	}
}
