package kv

import (
	"reflect"
	"testing"
	"testing/quick"
)

type orderInfo struct {
	DeliveryZone   string
	VendorCategory string `col:"vendor_cat"`
	CustomerLat    float64
	hidden         int //lint:ignore U1000 exercises unexported-field skipping
}

func TestAsRowStruct(t *testing.T) {
	r := AsRow(orderInfo{DeliveryZone: "Z1", VendorCategory: "food", CustomerLat: 52.0})
	if v, ok := r.Field("deliveryZone"); !ok || v != "Z1" {
		t.Fatalf("deliveryZone = %v, %v", v, ok)
	}
	if v, ok := r.Field("vendor_cat"); !ok || v != "food" {
		t.Fatalf("tagged column = %v, %v", v, ok)
	}
	if _, ok := r.Field("vendorCategory"); ok {
		t.Fatal("tag should replace the default column name")
	}
	if _, ok := r.Field("hidden"); ok {
		t.Fatal("unexported field leaked as column")
	}
	want := []string{"customerLat", "deliveryZone", "vendor_cat"}
	if got := r.Columns(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Columns = %v, want %v", got, want)
	}
}

func TestAsRowStructPointer(t *testing.T) {
	r := AsRow(&orderInfo{DeliveryZone: "Z9"})
	if v, ok := r.Field("deliveryZone"); !ok || v != "Z9" {
		t.Fatalf("pointer struct field = %v, %v", v, ok)
	}
	var nilPtr *orderInfo
	r = AsRow(nilPtr)
	if _, ok := r.Field("deliveryZone"); ok {
		t.Fatal("nil pointer should not expose struct fields")
	}
}

func TestAsRowMap(t *testing.T) {
	r := AsRow(map[string]any{"b": 2, "a": 1})
	if v, ok := r.Field("a"); !ok || v != 1 {
		t.Fatalf("map field = %v, %v", v, ok)
	}
	if got := r.Columns(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("map columns = %v", got)
	}
}

func TestAsRowScalar(t *testing.T) {
	r := AsRow(42)
	if v, ok := r.Field("value"); !ok || v != 42 {
		t.Fatalf("scalar row = %v, %v", v, ok)
	}
	if _, ok := r.Field("other"); ok {
		t.Fatal("scalar row exposed unexpected column")
	}
	if got := r.Columns(); !reflect.DeepEqual(got, []string{"value"}) {
		t.Fatalf("scalar columns = %v", got)
	}
}

func TestAsRowPassthrough(t *testing.T) {
	m := MapRow{"x": 1}
	if r := AsRow(m); !reflect.DeepEqual(r, m) {
		t.Fatal("Row values should pass through AsRow unchanged")
	}
}

// Property: every column reported by Columns() is retrievable via Field().
func TestRowColumnsRetrievable(t *testing.T) {
	f := func(zone string, lat float64) bool {
		r := AsRow(orderInfo{DeliveryZone: zone, CustomerLat: lat})
		for _, c := range r.Columns() {
			if _, ok := r.Field(c); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
