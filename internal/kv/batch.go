package kv

import (
	"squery/internal/partition"
	"squery/internal/transport"
	"squery/internal/wire"
)

// Batched operations: the partition-grouped message shape the paper's
// overhead numbers depend on. A batch of n operations touching k
// partitions costs k messages (one per remote partition group), not n —
// the Hazelcast partition-operation discipline. Within a partition the
// group is applied under one segment lock acquisition, so a batch also
// amortises locking, and replication mirrors each partition group in a
// single backup hop.

// Op is one operation in a batch: a put of Value under Key, or, with
// Delete set, a removal of Key.
type Op struct {
	Key    partition.Key
	Value  any
	Delete bool
}

// group is the slice of a batch hitting one partition, as indices into
// the original ops (order within a partition is preserved — last write
// to a key wins, exactly as if applied one by one).
type group struct {
	p   int
	idx []int
}

// groupByPartition splits n operations (keyed by keyAt) into per-partition
// groups, ascending by partition so batch application order is
// deterministic. A counting sort over partition ids — O(n + partitions),
// stable (within a partition the original order is preserved, so the last
// write to a key wins), and the groups share one index slice. This runs
// on every mirror flush, so its constant factor is part of the update
// path.
func (s *Store) groupByPartition(n int, keyAt func(int) partition.Key) []group {
	nparts := s.part.Count()
	parts := make([]int, n)
	counts := make([]int, nparts)
	distinct := 0
	for i := 0; i < n; i++ {
		p := s.part.Of(keyAt(i))
		parts[i] = p
		if counts[p] == 0 {
			distinct++
		}
		counts[p]++
	}
	starts := make([]int, nparts)
	sum := 0
	for p := 0; p < nparts; p++ {
		starts[p] = sum
		sum += counts[p]
	}
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		p := parts[i]
		idx[starts[p]] = i
		starts[p]++
	}
	out := make([]group, 0, distinct)
	for i := 0; i < n; {
		p := parts[idx[i]]
		out = append(out, group{p: p, idx: idx[i : i+counts[p]]})
		i += counts[p]
	}
	return out
}

// stripeSet collects the distinct stripe locks a group needs, in stripe
// order — every multi-stripe acquirer uses the same order, so batches
// cannot deadlock against each other or against unary operations (which
// take a single stripe, then the segment lock, the same ordering).
type stripeSet struct {
	need [lockStripes]bool
}

func (ss *stripeSet) add(seg *segment, ks string) {
	var h uint32
	for i := 0; i < len(ks); i++ {
		h = h*31 + uint32(ks[i])
	}
	ss.need[h%lockStripes] = true
}

func (ss *stripeSet) lock(seg *segment, st *partStats) {
	for i := range ss.need {
		if ss.need[i] {
			lockWith(&seg.stripes[i], st)
		}
	}
}

func (ss *stripeSet) unlock(seg *segment) {
	for i := range ss.need {
		if ss.need[i] {
			seg.stripes[i].Unlock()
		}
	}
}

// PutBatch applies a batch of puts/deletes to the named map. Cost: one
// message per remote partition group (carrying the group's operation
// count and encoded size), one segment lock acquisition and — with
// replication — one backup hop per group. For fenced views every group
// carries the cached table's epoch stamp; a rejected group refreshes,
// backs off and retries independently of its siblings (a mirror batch
// spanning a migrated partition re-sends only that partition's slice).
func (v NodeView) PutBatch(mapName string, ops []Op) {
	if len(ops) == 0 {
		return
	}
	m := v.store.GetMap(mapName)
	groups := v.store.groupByPartition(len(ops), func(i int) partition.Key { return ops[i].Key })
	// Key strings are computed once for the whole batch; groups index
	// into this slice by op position.
	kss := make([]string, len(ops))
	for i := range ops {
		kss[i] = partition.KeyString(ops[i].Key)
	}
	for _, g := range groups {
		g := g
		v.fenced(func(force bool) error { return m.applyGroup(v, g, ops, kss, force) })
	}
}

// applyGroup applies one partition group of a batch.
func (m *Map) applyGroup(v NodeView, g group, ops []Op, kss []string, force bool) error {
	s := m.store
	node := v.node
	bytes := 0
	for _, i := range g.idx {
		bytes += wire.Size(ops[i].Key)
		if !ops[i].Delete {
			bytes += wire.Size(ops[i].Value)
		}
	}
	if owner := v.ownerOf(g.p); node != owner {
		s.tr.Send(transport.Msg{From: node, To: owner, Ops: len(g.idx), Bytes: bytes})
	}
	st := s.statsFor(g.p)
	seg := m.segs[g.p]

	var ss stripeSet
	for _, i := range g.idx {
		ss.add(seg, kss[i])
	}
	ss.lock(seg, st)
	seg.mu.Lock()
	if !force {
		if err := s.checkFence(v.fence, g.p); err != nil {
			seg.mu.Unlock()
			ss.unlock(seg)
			return err
		}
	}
	ixs := m.indexSet()
	taps := m.tapSet()
	var deltas []Delta
	var epoch int64
	if len(taps) > 0 {
		deltas = make([]Delta, 0, len(g.idx))
		epoch = s.assign.PartitionEpoch(g.p)
	}
	puts, dels := 0, 0
	for _, i := range g.idx {
		var old Entry
		had := false
		if len(ixs) > 0 || len(taps) > 0 {
			old, had = seg.entries[kss[i]]
		}
		if ops[i].Delete {
			delete(seg.entries, kss[i])
			dels++
			if had {
				for _, ix := range ixs {
					ix.update(g.p, kss[i], old.Value, true, nil, false)
				}
			}
			if len(taps) > 0 && had {
				seg.seq++
				deltas = append(deltas, Delta{Map: m.name, Part: g.p, Seq: seg.seq,
					Key: ops[i].Key, KeyS: kss[i], Tombstone: true, Epoch: epoch})
			}
		} else {
			seg.entries[kss[i]] = Entry{Key: ops[i].Key, Value: ops[i].Value}
			puts++
			for _, ix := range ixs {
				ix.update(g.p, kss[i], old.Value, had, ops[i].Value, true)
			}
			if len(taps) > 0 {
				seg.seq++
				deltas = append(deltas, Delta{Map: m.name, Part: g.p, Seq: seg.seq,
					Key: ops[i].Key, KeyS: kss[i], Value: ops[i].Value, Epoch: epoch})
			}
		}
	}
	m.emitDeltas(taps, deltas)
	seg.mu.Unlock()
	ss.unlock(seg)
	if st != nil {
		if puts > 0 {
			st.sets.Add(int64(puts))
		}
		if dels > 0 {
			st.deletes.Add(int64(dels))
		}
	}
	if s.replicated {
		s.backupHop(g.p, len(g.idx), bytes)
		bak := m.backups[g.p]
		bak.mu.Lock()
		for _, i := range g.idx {
			if ops[i].Delete {
				delete(bak.entries, kss[i])
			} else {
				bak.entries[kss[i]] = Entry{Key: ops[i].Key, Value: ops[i].Value}
			}
		}
		bak.mu.Unlock()
	}
	return nil
}

// ApplyBatch runs a batched read-modify-write over keys: for each key,
// merge is called with the key's index, the key, the current value and
// whether it exists, and returns the new value and whether to keep it
// (false deletes the key). The whole cycle costs one round trip per
// remote partition group — where a Get+Put-per-key loop would cost two
// messages per key — and one segment lock acquisition per group, so the
// read and the write happen atomically per key with no window for a
// concurrent writer in between.
//
// merge runs with the segment locked: it must be pure computation — no
// calls back into the store, no blocking.
func (v NodeView) ApplyBatch(mapName string, keys []partition.Key, merge func(i int, key partition.Key, cur any, ok bool) (any, bool)) {
	if len(keys) == 0 {
		return
	}
	m := v.store.GetMap(mapName)
	s := v.store
	groups := s.groupByPartition(len(keys), func(i int) partition.Key { return keys[i] })
	kss := make([]string, len(keys))
	for i := range keys {
		kss[i] = partition.KeyString(keys[i])
	}
	for _, g := range groups {
		g := g
		v.fenced(func(force bool) error { return m.applyMergeGroup(v, g, keys, kss, merge, force) })
	}
}

// applyMergeGroup runs one partition group of an ApplyBatch, enforcing the
// epoch fence before any merge runs — a rejected group re-reads current
// values on retry, so the read-modify-write stays atomic per attempt.
func (m *Map) applyMergeGroup(v NodeView, g group, keys []partition.Key, kss []string,
	merge func(i int, key partition.Key, cur any, ok bool) (any, bool), force bool) error {
	s := m.store
	if owner := v.ownerOf(g.p); v.node != owner {
		bytes := 0
		for _, i := range g.idx {
			bytes += wire.Size(keys[i])
		}
		s.tr.Send(transport.Msg{From: v.node, To: owner, Ops: len(g.idx), Bytes: bytes})
	}
	st := s.statsFor(g.p)
	seg := m.segs[g.p]

	var ss stripeSet
	for _, i := range g.idx {
		ss.add(seg, kss[i])
	}
	type bakOp struct {
		i      int
		e      Entry
		delete bool
	}
	var bakOps []bakOp
	ss.lock(seg, st)
	seg.mu.Lock()
	if !force {
		if err := s.checkFence(v.fence, g.p); err != nil {
			seg.mu.Unlock()
			ss.unlock(seg)
			return err
		}
	}
	ixs := m.indexSet()
	taps := m.tapSet()
	var deltas []Delta
	var epoch int64
	if len(taps) > 0 {
		deltas = make([]Delta, 0, len(g.idx))
		epoch = s.assign.PartitionEpoch(g.p)
	}
	puts, dels := 0, 0
	for _, i := range g.idx {
		cur, ok := seg.entries[kss[i]]
		var curVal any
		if ok {
			curVal = cur.Value
		}
		nv, keep := merge(i, keys[i], curVal, ok)
		if keep {
			e := Entry{Key: keys[i], Value: nv}
			seg.entries[kss[i]] = e
			puts++
			for _, ix := range ixs {
				ix.update(g.p, kss[i], curVal, ok, nv, true)
			}
			if len(taps) > 0 {
				seg.seq++
				deltas = append(deltas, Delta{Map: m.name, Part: g.p, Seq: seg.seq,
					Key: keys[i], KeyS: kss[i], Value: nv, Epoch: epoch})
			}
			if s.replicated {
				bakOps = append(bakOps, bakOp{i: i, e: e})
			}
		} else {
			delete(seg.entries, kss[i])
			dels++
			if ok {
				for _, ix := range ixs {
					ix.update(g.p, kss[i], curVal, true, nil, false)
				}
				if len(taps) > 0 {
					seg.seq++
					deltas = append(deltas, Delta{Map: m.name, Part: g.p, Seq: seg.seq,
						Key: keys[i], KeyS: kss[i], Tombstone: true, Epoch: epoch})
				}
			}
			if s.replicated {
				bakOps = append(bakOps, bakOp{i: i, delete: true})
			}
		}
	}
	m.emitDeltas(taps, deltas)
	seg.mu.Unlock()
	ss.unlock(seg)
	if st != nil {
		st.gets.Add(int64(len(g.idx)))
		if puts > 0 {
			st.sets.Add(int64(puts))
		}
		if dels > 0 {
			st.deletes.Add(int64(dels))
		}
	}
	if s.replicated {
		bytes := 0
		for _, b := range bakOps {
			if !b.delete {
				bytes += wire.Size(b.e.Key) + wire.Size(b.e.Value)
			}
		}
		s.backupHop(g.p, len(g.idx), bytes)
		bak := m.backups[g.p]
		bak.mu.Lock()
		for _, b := range bakOps {
			if b.delete {
				delete(bak.entries, kss[b.i])
			} else {
				bak.entries[kss[b.i]] = b.e
			}
		}
		bak.mu.Unlock()
	}
	return nil
}
