package kv

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"squery/internal/partition"
	"squery/internal/transport"
	"squery/internal/wire"
)

// Epoch fencing: the store-side half of the online migration protocol.
//
// The partition table is a live, versioned object (see
// partition.Assignment): every failover promotion or migration flip bumps
// a global table epoch and the per-partition epoch of each reseated
// partition. A *fenced* NodeView caches a table snapshot and stamps its
// partition epochs on every write it issues; the store compares the stamp
// against the live table under the segment lock and rejects mismatches
// with StaleEpochError — the split-brain fence: a node that missed a
// membership change cannot keep writing to a partition it no longer
// addresses correctly. The rejected sender refreshes its cached table,
// backs off exponentially, and retries against the new owner.
//
// While a partition's handoff is in flight the partition is frozen
// (MigratingError) so the shipped snapshot cannot be overtaken by writes
// racing the ownership flip.
//
// Everything here is the protocol layer over a shared-memory store: data
// is never at risk (the store can always apply an op), so after a bounded
// number of rejections an op is forced through as a liveness backstop and
// counted in FenceStats.Forced — in a healthy run that counter stays 0.

// StaleEpochError rejects a fenced op stamped with an out-of-date
// partition epoch: the sender's cached table predates a migration or
// failover of that partition.
type StaleEpochError struct {
	Partition int
	OpEpoch   int64
	CurEpoch  int64
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("kv: stale epoch %d for partition %d (current %d)", e.OpEpoch, e.Partition, e.CurEpoch)
}

// MigratingError rejects a fenced op addressed to a partition whose
// handoff is in flight: the partition is frozen until ownership flips.
type MigratingError struct{ Partition int }

func (e *MigratingError) Error() string {
	return fmt.Sprintf("kv: partition %d is migrating", e.Partition)
}

// fenceState is the mutable half of a fenced NodeView: the cached table
// snapshot whose epochs the view stamps on its ops. Refreshed (atomically
// swapped) after every rejection.
type fenceState struct {
	table atomic.Pointer[partition.Table]
}

func (f *fenceState) refresh(s *Store) {
	t := s.assign.Table()
	f.table.Store(&t)
}

// FencedView returns a NodeView whose writes carry the epoch of a cached
// partition-table snapshot and are rejected when that snapshot goes stale.
// Operator state backends use fenced views; plain View remains for callers
// outside the migration protocol (query clients, tests).
func (s *Store) FencedView(node int) NodeView {
	f := &fenceState{}
	f.refresh(s)
	return NodeView{store: s, node: node, fence: f}
}

// Fenced reports whether this view stamps epochs on its writes.
func (v NodeView) Fenced() bool { return v.fence != nil }

// FenceEpoch returns the global epoch of the view's cached table, or -1
// for an unfenced view.
func (v NodeView) FenceEpoch() int64 {
	if v.fence == nil {
		return -1
	}
	return v.fence.table.Load().Epoch()
}

// RefreshFence re-snapshots the cached table from the live assignment.
func (v NodeView) RefreshFence() {
	if v.fence != nil {
		v.fence.refresh(v.store)
	}
}

// ownerOf resolves partition p's owner for routing: the live table for
// plain views, the cached snapshot for fenced ones. A fenced op is
// addressed to the owner the sender *believes in* — that is what makes
// staleness observable (the hop goes to the old owner, the epoch check
// rejects it) instead of silently self-correcting.
func (v NodeView) ownerOf(p int) int {
	if v.fence != nil {
		return v.fence.table.Load().Owner(p)
	}
	return v.store.assign.Owner(p)
}

// checkFence validates a fenced write to partition p. Called with the
// partition's segment lock held, so the decision is atomic with the
// mutation it guards. A nil fence always passes.
func (s *Store) checkFence(f *fenceState, p int) error {
	if f == nil {
		return nil
	}
	if s.migrating[p].Load() {
		return &MigratingError{Partition: p}
	}
	op := f.table.Load().PartitionEpoch(p)
	if cur := s.assign.PartitionEpoch(p); op != cur {
		return &StaleEpochError{Partition: p, OpEpoch: op, CurEpoch: cur}
	}
	return nil
}

const (
	// fenceMaxAttempts bounds the reject-refresh-retry loop before an op
	// is forced through unfenced (liveness backstop; see package comment).
	fenceMaxAttempts = 64
	fenceBaseBackoff = 100 * time.Microsecond
	fenceMaxBackoff  = 5 * time.Millisecond
)

// fenced runs one fenceable operation: on rejection it refreshes the
// view's cached table, backs off exponentially, and retries against the
// (possibly new) owner. Unfenced views pass straight through — op cannot
// be rejected without a fence.
func (v NodeView) fenced(op func(force bool) error) {
	err := op(false)
	if err == nil || v.fence == nil {
		return
	}
	s := v.store
	backoff := fenceBaseBackoff
	for attempt := 1; attempt < fenceMaxAttempts; attempt++ {
		s.fenceRejects.Add(1)
		v.fence.refresh(s)
		time.Sleep(backoff)
		if backoff *= 2; backoff > fenceMaxBackoff {
			backoff = fenceMaxBackoff
		}
		s.fenceRetries.Add(1)
		if err = op(false); err == nil {
			return
		}
	}
	s.fenceRejects.Add(1)
	s.fenceForced.Add(1)
	v.fence.refresh(s)
	_ = op(true)
}

// FenceStats is the store's cumulative fencing accounting.
type FenceStats struct {
	// Rejects counts ops bounced with StaleEpochError or MigratingError.
	Rejects int64
	// Retries counts re-attempts after a refresh (Rejects minus final
	// give-ups equals successful Retries).
	Retries int64
	// Forced counts ops pushed through unfenced after exhausting retries;
	// nonzero means a migration stalled far beyond the backoff budget.
	Forced int64
}

// FenceStats returns the store's cumulative fencing counters.
func (s *Store) FenceStats() FenceStats {
	return FenceStats{
		Rejects: s.fenceRejects.Load(),
		Retries: s.fenceRetries.Load(),
		Forced:  s.fenceForced.Load(),
	}
}

// BeginPartitionMigration freezes partition p: fenced writers bounce with
// MigratingError until EndPartitionMigration. It reports whether the
// freeze was acquired (false if a migration of p is already in flight).
func (s *Store) BeginPartitionMigration(p int) bool {
	return s.migrating[p].CompareAndSwap(false, true)
}

// EndPartitionMigration thaws partition p. Safe to call after either a
// completed flip or an aborted handoff — the shared-memory segments were
// never torn, so abort needs no data rollback, only the thaw.
func (s *Store) EndPartitionMigration(p int) {
	s.migrating[p].Store(false)
}

// Migrating reports whether partition p is currently frozen.
func (s *Store) Migrating(p int) bool { return s.migrating[p].Load() }

// ShipPartition encodes every map's slice of partition p with the wire
// codec and sends it from → to, one message per non-empty map, with a
// real payload frame — over the loopback transport the state bytes
// actually cross a TCP socket. It returns total entry and byte counts for
// the caller's handoff accounting (e.g. charging the new backup's seed
// copy). Entries whose key or value the codec cannot encode are still
// counted by wire.Size but omitted from the frame, keeping the accounting
// transport-independent.
func (s *Store) ShipPartition(p, from, to int) (ops, bytes int) {
	if from == to {
		return 0, 0
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.maps))
	for n := range s.maps {
		names = append(names, n)
	}
	sort.Strings(names)
	maps := make([]*Map, len(names))
	for i, n := range names {
		maps[i] = s.maps[n]
	}
	s.mu.RUnlock()
	for _, m := range maps {
		seg := m.segs[p]
		seg.mu.RLock()
		entries := make([]Entry, 0, len(seg.entries))
		for _, e := range seg.entries {
			entries = append(entries, e)
		}
		seg.mu.RUnlock()
		if len(entries) == 0 {
			continue
		}
		payload := make([]byte, 0, 32*len(entries))
		sz := 0
		for _, e := range entries {
			sz += wire.Size(e.Key) + wire.Size(e.Value)
			if b, err := wire.AppendValue(payload, e.Key); err == nil {
				payload = b
			}
			if b, err := wire.AppendValue(payload, e.Value); err == nil {
				payload = b
			}
		}
		s.tr.Send(transport.Msg{From: from, To: to, Ops: len(entries), Bytes: sz, Payload: payload})
		ops += len(entries)
		bytes += sz
	}
	return ops, bytes
}
