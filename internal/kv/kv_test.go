package kv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"squery/internal/partition"
)

func testStore() *Store {
	p := partition.New(partition.DefaultCount)
	return NewStore(p, partition.Assign(p.Count(), 3), nil)
}

func TestPutGetDelete(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", "a", 1)
	v.Put("m", "b", 2)
	if got, ok := v.Get("m", "a"); !ok || got != 1 {
		t.Fatalf(`Get("a") = %v, %v; want 1, true`, got, ok)
	}
	if got, ok := v.Get("m", "b"); !ok || got != 2 {
		t.Fatalf(`Get("b") = %v, %v; want 2, true`, got, ok)
	}
	if _, ok := v.Get("m", "missing"); ok {
		t.Fatal("Get on missing key returned ok")
	}
	if !v.Delete("m", "a") {
		t.Fatal("Delete existing key returned false")
	}
	if v.Delete("m", "a") {
		t.Fatal("Delete missing key returned true")
	}
	if _, ok := v.Get("m", "a"); ok {
		t.Fatal("key still present after Delete")
	}
}

func TestPutOverwrites(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", 7, "old")
	v.Put("m", 7, "new")
	got, _ := v.Get("m", 7)
	if got != "new" {
		t.Fatalf("Get = %v, want new", got)
	}
	if n := v.Store().GetMap("m").Size(); n != 1 {
		t.Fatalf("Size = %d, want 1", n)
	}
}

func TestMapsAreIndependent(t *testing.T) {
	v := testStore().View(0)
	v.Put("live_avg", "k", 1)
	v.Put("snapshot_avg", "k", 2)
	a, _ := v.Get("live_avg", "k")
	b, _ := v.Get("snapshot_avg", "k")
	if a == b {
		t.Fatal("maps share entries")
	}
}

func TestSizeAndClear(t *testing.T) {
	v := testStore().View(0)
	for i := 0; i < 500; i++ {
		v.Put("m", i, i*i)
	}
	m := v.Store().GetMap("m")
	if m.Size() != 500 {
		t.Fatalf("Size = %d, want 500", m.Size())
	}
	m.Clear()
	if m.Size() != 0 {
		t.Fatalf("Size after Clear = %d", m.Size())
	}
}

func TestScanVisitsAll(t *testing.T) {
	v := testStore().View(0)
	want := map[string]bool{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		v.Put("m", k, i)
		want[k] = true
	}
	seen := map[string]bool{}
	v.Scan("m", func(e Entry) bool {
		seen[partition.KeyString(e.Key)] = true
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("scan saw %d keys, want %d", len(seen), len(want))
	}
}

func TestScanEarlyStop(t *testing.T) {
	v := testStore().View(0)
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	n := 0
	v.Scan("m", func(Entry) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("scan visited %d entries after early stop, want 10", n)
	}
}

func TestGetAllPreservesOrderAndMisses(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", "x", 10)
	v.Put("m", "z", 30)
	got := v.GetAll("m", []partition.Key{"x", "y", "z"})
	if got[0] != 10 || got[1] != nil || got[2] != 30 {
		t.Fatalf("GetAll = %v, want [10 <nil> 30]", got)
	}
}

func TestMapNamesSortedAndDrop(t *testing.T) {
	s := testStore()
	s.GetMap("b")
	s.GetMap("a")
	if !s.HasMap("a") || s.HasMap("zz") {
		t.Fatal("HasMap wrong")
	}
	names := s.MapNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("MapNames = %v", names)
	}
	s.DropMap("a")
	if s.HasMap("a") {
		t.Fatal("map a still present after drop")
	}
}

// Property: the store behaves exactly like a plain map under any sequence
// of puts and deletes.
func TestStoreMatchesModelMap(t *testing.T) {
	type op struct {
		Key    uint8
		Value  int
		Delete bool
	}
	f := func(ops []op) bool {
		v := testStore().View(0)
		model := map[string]int{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key)
			if o.Delete {
				delete(model, k)
				v.Delete("m", k)
			} else {
				model[k] = o.Value
				v.Put("m", k, o.Value)
			}
		}
		if v.Store().GetMap("m").Size() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := v.Get("m", k)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentPutsDistinctKeys(t *testing.T) {
	v := testStore().View(0)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.Put("m", fmt.Sprintf("w%d-%d", w, i), i)
			}
		}(w)
	}
	wg.Wait()
	if n := v.Store().GetMap("m").Size(); n != workers*per {
		t.Fatalf("Size = %d, want %d", n, workers*per)
	}
}

func TestConcurrentReadWriteSameKey(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", "hot", 0)
	var wg sync.WaitGroup
	stop := atomic.Bool{}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= 2000; i++ {
			v.Put("m", "hot", i)
		}
		stop.Store(true)
	}()
	go func() {
		defer wg.Done()
		last := -1
		for !stop.Load() {
			got, ok := v.Get("m", "hot")
			if !ok {
				t.Error("hot key vanished")
				return
			}
			if got.(int) < last {
				t.Errorf("read went backwards: %d after %d", got, last)
				return
			}
			last = got.(int)
		}
	}()
	wg.Wait()
}

func TestNetworkChargesRemoteOnly(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	var hops atomic.Int64
	s := NewStore(p, a, func(from, to int) { hops.Add(1) })

	// A put from the owning node must be free; from any other node it
	// must cost exactly one hop.
	key := "some-key"
	owner := a.Owner(p.Of(key))
	s.View(owner).Put("m", key, 1)
	if hops.Load() != 0 {
		t.Fatalf("local put charged %d hops", hops.Load())
	}
	other := (owner + 1) % 4
	s.View(other).Put("m", key, 2)
	if hops.Load() != 1 {
		t.Fatalf("remote put charged %d hops, want 1", hops.Load())
	}

	// A client scan touches each node once.
	hops.Store(0)
	s.View(ClientNode).Scan("m", func(Entry) bool { return true })
	if hops.Load() != 4 {
		t.Fatalf("client scan charged %d hops, want 4 (one per node)", hops.Load())
	}
}

func TestGetAllBatchesHops(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	var hops atomic.Int64
	s := NewStore(p, a, func(from, to int) { hops.Add(1) })
	v := s.View(ClientNode)
	keys := make([]partition.Key, 64)
	for i := range keys {
		keys[i] = i
		v.Put("m", i, i)
	}
	hops.Store(0)
	v.GetAll("m", keys)
	if hops.Load() > 4 {
		t.Fatalf("batched GetAll charged %d hops, want <= 4", hops.Load())
	}
}

func TestStorePanicsOnMismatchedAssignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore with mismatched assignment did not panic")
		}
	}()
	NewStore(partition.New(8), partition.Assign(16, 2), nil)
}

func TestScanPartitionWithFilter(t *testing.T) {
	s := testStore()
	v := s.View(0)
	for i := 0; i < 200; i++ {
		v.Put("m", fmt.Sprintf("key-%d", i), i)
	}
	m := s.GetMap("m")
	seen := 0
	for p := 0; p < s.Partitioner().Count(); p++ {
		m.ScanPartitionWith(p, ScanOpts{Filter: func(e Entry) bool {
			return e.Value.(int)%2 == 0
		}}, func(e Entry) bool {
			if e.Value.(int)%2 != 0 {
				t.Fatalf("filter leaked odd value %v", e.Value)
			}
			seen++
			return true
		})
	}
	if seen != 100 {
		t.Fatalf("filtered scan saw %d entries, want 100", seen)
	}
}

func TestScanPartitionWithDoneStopsEarly(t *testing.T) {
	s := testStore()
	v := s.View(0)
	// Pile enough keys into one partition that the done poll (every 32
	// entries) must trigger mid-scan.
	var target int
	n := 0
	for i := 0; n < 500; i++ {
		p := s.Partitioner().Of(i)
		if n == 0 {
			target = p
		}
		if p == target {
			v.Put("m", i, i)
			n++
		}
	}
	done := make(chan struct{})
	visited := 0
	s.GetMap("m").ScanPartitionWith(target, ScanOpts{Done: done}, func(Entry) bool {
		visited++
		if visited == 10 {
			close(done)
		}
		return true
	})
	if visited >= 500 {
		t.Fatalf("done channel did not stop the scan (visited %d)", visited)
	}
}

func TestScanPartitionBackupWithFilter(t *testing.T) {
	s := testStore()
	if err := s.SetReplicated(); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	for i := 0; i < 50; i++ {
		v.Put("m", i, i)
	}
	m := s.GetMap("m")
	seen := 0
	for p := 0; p < s.Partitioner().Count(); p++ {
		m.ScanPartitionBackupWith(p, ScanOpts{Filter: func(e Entry) bool {
			return e.Value.(int) < 5
		}}, func(e Entry) bool {
			seen++
			return true
		})
	}
	if seen != 5 {
		t.Fatalf("filtered backup scan saw %d entries, want 5", seen)
	}
}
