package kv

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"squery/internal/partition"
	"squery/internal/transport"
)

func testStore() *Store {
	p := partition.New(partition.DefaultCount)
	return NewStore(p, partition.Assign(p.Count(), 3), nil)
}

func TestPutGetDelete(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", "a", 1)
	v.Put("m", "b", 2)
	if got, ok := v.Get("m", "a"); !ok || got != 1 {
		t.Fatalf(`Get("a") = %v, %v; want 1, true`, got, ok)
	}
	if got, ok := v.Get("m", "b"); !ok || got != 2 {
		t.Fatalf(`Get("b") = %v, %v; want 2, true`, got, ok)
	}
	if _, ok := v.Get("m", "missing"); ok {
		t.Fatal("Get on missing key returned ok")
	}
	if !v.Delete("m", "a") {
		t.Fatal("Delete existing key returned false")
	}
	if v.Delete("m", "a") {
		t.Fatal("Delete missing key returned true")
	}
	if _, ok := v.Get("m", "a"); ok {
		t.Fatal("key still present after Delete")
	}
}

func TestPutOverwrites(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", 7, "old")
	v.Put("m", 7, "new")
	got, _ := v.Get("m", 7)
	if got != "new" {
		t.Fatalf("Get = %v, want new", got)
	}
	if n := v.Store().GetMap("m").Size(); n != 1 {
		t.Fatalf("Size = %d, want 1", n)
	}
}

func TestMapsAreIndependent(t *testing.T) {
	v := testStore().View(0)
	v.Put("live_avg", "k", 1)
	v.Put("snapshot_avg", "k", 2)
	a, _ := v.Get("live_avg", "k")
	b, _ := v.Get("snapshot_avg", "k")
	if a == b {
		t.Fatal("maps share entries")
	}
}

func TestSizeAndClear(t *testing.T) {
	v := testStore().View(0)
	for i := 0; i < 500; i++ {
		v.Put("m", i, i*i)
	}
	m := v.Store().GetMap("m")
	if m.Size() != 500 {
		t.Fatalf("Size = %d, want 500", m.Size())
	}
	m.Clear()
	if m.Size() != 0 {
		t.Fatalf("Size after Clear = %d", m.Size())
	}
}

func TestScanVisitsAll(t *testing.T) {
	v := testStore().View(0)
	want := map[string]bool{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		v.Put("m", k, i)
		want[k] = true
	}
	seen := map[string]bool{}
	v.Scan("m", func(e Entry) bool {
		seen[partition.KeyString(e.Key)] = true
		return true
	})
	if len(seen) != len(want) {
		t.Fatalf("scan saw %d keys, want %d", len(seen), len(want))
	}
}

func TestScanEarlyStop(t *testing.T) {
	v := testStore().View(0)
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}
	n := 0
	v.Scan("m", func(Entry) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("scan visited %d entries after early stop, want 10", n)
	}
}

func TestGetAllPreservesOrderAndMisses(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", "x", 10)
	v.Put("m", "z", 30)
	got := v.GetAll("m", []partition.Key{"x", "y", "z"})
	if got[0] != 10 || got[1] != nil || got[2] != 30 {
		t.Fatalf("GetAll = %v, want [10 <nil> 30]", got)
	}
}

func TestMapNamesSortedAndDrop(t *testing.T) {
	s := testStore()
	s.GetMap("b")
	s.GetMap("a")
	if !s.HasMap("a") || s.HasMap("zz") {
		t.Fatal("HasMap wrong")
	}
	names := s.MapNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("MapNames = %v", names)
	}
	s.DropMap("a")
	if s.HasMap("a") {
		t.Fatal("map a still present after drop")
	}
}

// Property: the store behaves exactly like a plain map under any sequence
// of puts and deletes.
func TestStoreMatchesModelMap(t *testing.T) {
	type op struct {
		Key    uint8
		Value  int
		Delete bool
	}
	f := func(ops []op) bool {
		v := testStore().View(0)
		model := map[string]int{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key)
			if o.Delete {
				delete(model, k)
				v.Delete("m", k)
			} else {
				model[k] = o.Value
				v.Put("m", k, o.Value)
			}
		}
		if v.Store().GetMap("m").Size() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := v.Get("m", k)
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentPutsDistinctKeys(t *testing.T) {
	v := testStore().View(0)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.Put("m", fmt.Sprintf("w%d-%d", w, i), i)
			}
		}(w)
	}
	wg.Wait()
	if n := v.Store().GetMap("m").Size(); n != workers*per {
		t.Fatalf("Size = %d, want %d", n, workers*per)
	}
}

func TestConcurrentReadWriteSameKey(t *testing.T) {
	v := testStore().View(0)
	v.Put("m", "hot", 0)
	var wg sync.WaitGroup
	stop := atomic.Bool{}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= 2000; i++ {
			v.Put("m", "hot", i)
		}
		stop.Store(true)
	}()
	go func() {
		defer wg.Done()
		last := -1
		for !stop.Load() {
			got, ok := v.Get("m", "hot")
			if !ok {
				t.Error("hot key vanished")
				return
			}
			if got.(int) < last {
				t.Errorf("read went backwards: %d after %d", got, last)
				return
			}
			last = got.(int)
		}
	}()
	wg.Wait()
}

func TestNetworkChargesRemoteOnly(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	tr := transport.NewSim(transport.SimConfig{})
	s := NewStore(p, a, tr)
	hops := func() uint64 { return tr.Stats().Messages }

	// A put from the owning node must be free; from any other node it
	// must cost exactly one hop.
	key := "some-key"
	owner := a.Owner(p.Of(key))
	s.View(owner).Put("m", key, 1)
	if hops() != 0 {
		t.Fatalf("local put charged %d hops", hops())
	}
	other := (owner + 1) % 4
	s.View(other).Put("m", key, 2)
	if hops() != 1 {
		t.Fatalf("remote put charged %d hops, want 1", hops())
	}

	// A client scan touches each node once.
	before := hops()
	s.View(ClientNode).Scan("m", func(Entry) bool { return true })
	if got := hops() - before; got != 4 {
		t.Fatalf("client scan charged %d hops, want 4 (one per node)", got)
	}
}

func TestGetAllBatchesHops(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	tr := transport.NewSim(transport.SimConfig{})
	s := NewStore(p, a, tr)
	v := s.View(ClientNode)
	keys := make([]partition.Key, 64)
	for i := range keys {
		keys[i] = i
		v.Put("m", i, i)
	}
	before := tr.Stats()
	v.GetAll("m", keys)
	after := tr.Stats()
	if got := after.Messages - before.Messages; got > 4 {
		t.Fatalf("batched GetAll charged %d hops, want <= 4", got)
	}
	// Every key still counts as a logical operation.
	if got := after.Ops - before.Ops; got != 64 {
		t.Fatalf("batched GetAll accounted %d ops, want 64", got)
	}
}

func TestPutBatchSemanticsMatchUnary(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	batched := NewStore(p, a, nil)
	unary := NewStore(p, a, nil)
	bv, uv := batched.View(0), unary.View(0)

	var ops []Op
	for i := 0; i < 200; i++ {
		ops = append(ops, Op{Key: i, Value: i * i})
		uv.Put("m", i, i*i)
	}
	// Overwrites and deletes inside the same batch, in order.
	ops = append(ops, Op{Key: 7, Value: "last-write-wins"})
	uv.Put("m", 7, "last-write-wins")
	ops = append(ops, Op{Key: 8, Delete: true})
	uv.Delete("m", 8)
	bv.PutBatch("m", ops)

	if bs, us := batched.GetMap("m").Size(), unary.GetMap("m").Size(); bs != us {
		t.Fatalf("batched size %d != unary size %d", bs, us)
	}
	for i := 0; i < 200; i++ {
		bg, bok := bv.Get("m", i)
		ug, uok := uv.Get("m", i)
		if bok != uok || bg != ug {
			t.Fatalf("key %d: batched (%v, %v) != unary (%v, %v)", i, bg, bok, ug, uok)
		}
	}
}

func TestPutBatchChargesPerPartitionGroup(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	tr := transport.NewSim(transport.SimConfig{})
	s := NewStore(p, a, tr)
	v := s.View(ClientNode) // remote to every partition

	var ops []Op
	for i := 0; i < 256; i++ {
		ops = append(ops, Op{Key: i, Value: i})
	}
	v.PutBatch("m", ops)
	st := tr.Stats()
	// 256 keys over 16 partitions: at most one message per partition
	// group, never one per key.
	if st.Messages > 16 {
		t.Fatalf("PutBatch sent %d messages for 256 ops over 16 partitions, want <= 16", st.Messages)
	}
	if st.Ops != 256 {
		t.Fatalf("PutBatch accounted %d ops, want 256", st.Ops)
	}
}

func TestPutBatchReplicates(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	s := NewStore(p, a, nil)
	if err := s.SetReplicated(); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	var ops []Op
	for i := 0; i < 100; i++ {
		ops = append(ops, Op{Key: i, Value: i})
	}
	v.PutBatch("m", ops)
	if got := s.GetMap("m").BackupSize(); got != 100 {
		t.Fatalf("BackupSize = %d, want 100", got)
	}
	// Batched deletes reach the backups too.
	ops = ops[:0]
	for i := 0; i < 50; i++ {
		ops = append(ops, Op{Key: i, Delete: true})
	}
	v.PutBatch("m", ops)
	if got := s.GetMap("m").BackupSize(); got != 50 {
		t.Fatalf("BackupSize after batched deletes = %d, want 50", got)
	}
}

func TestApplyBatchReadModifyWrite(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	tr := transport.NewSim(transport.SimConfig{})
	s := NewStore(p, a, tr)
	v := s.View(0)
	for i := 0; i < 100; i++ {
		v.Put("m", i, i)
	}

	keys := make([]partition.Key, 120) // 100 present + 20 absent
	for i := range keys {
		keys[i] = i
	}
	before := tr.Stats().Messages
	v.ApplyBatch("m", keys, func(i int, key partition.Key, cur any, ok bool) (any, bool) {
		if i < 100 {
			if !ok || cur != i {
				t.Errorf("key %v: merge saw (%v, %v), want (%d, true)", key, cur, ok, i)
			}
			if i%10 == 0 {
				return nil, false // delete every 10th
			}
			return cur.(int) + 1000, true
		}
		if ok {
			t.Errorf("absent key %v: merge saw ok=true", key)
		}
		return "created", true
	})
	used := tr.Stats().Messages - before
	// One round trip per remote partition group — 16 partitions, 3/4 of
	// them remote to node 0 on average, but never more than 16 and far
	// below the 240 a Get+Put-per-key loop would cost.
	if used > 16 {
		t.Fatalf("ApplyBatch used %d messages, want <= 16", used)
	}

	for i := 0; i < 100; i++ {
		got, ok := v.Get("m", i)
		if i%10 == 0 {
			if ok {
				t.Fatalf("key %d should have been deleted, got %v", i, got)
			}
			continue
		}
		if !ok || got != i+1000 {
			t.Fatalf("key %d = (%v, %v), want (%d, true)", i, got, ok, i+1000)
		}
	}
	for i := 100; i < 120; i++ {
		if got, ok := v.Get("m", i); !ok || got != "created" {
			t.Fatalf("key %d = (%v, %v), want (created, true)", i, got, ok)
		}
	}
}

func TestApplyBatchReplicates(t *testing.T) {
	p := partition.New(16)
	a := partition.Assign(16, 4)
	s := NewStore(p, a, nil)
	if err := s.SetReplicated(); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	keys := make([]partition.Key, 80)
	for i := range keys {
		keys[i] = i
	}
	v.ApplyBatch("m", keys, func(i int, _ partition.Key, _ any, _ bool) (any, bool) {
		return i, i%2 == 0 // keep evens only
	})
	if got := s.GetMap("m").BackupSize(); got != 40 {
		t.Fatalf("BackupSize = %d, want 40", got)
	}
	if got := s.GetMap("m").Size(); got != 40 {
		t.Fatalf("Size = %d, want 40", got)
	}
}

func TestBatchConcurrentWithUnary(t *testing.T) {
	s := testStore()
	v := s.View(0)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for r := 0; r < 20; r++ {
			var ops []Op
			for i := 0; i < 100; i++ {
				ops = append(ops, Op{Key: fmt.Sprintf("b-%d", i), Value: r})
			}
			v.PutBatch("m", ops)
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 20; r++ {
			keys := make([]partition.Key, 100)
			for i := range keys {
				keys[i] = fmt.Sprintf("b-%d", i)
			}
			v.ApplyBatch("m", keys, func(_ int, _ partition.Key, cur any, ok bool) (any, bool) {
				if !ok {
					return 0, true
				}
				return cur, true
			})
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < 2000; r++ {
			v.Put("m", fmt.Sprintf("u-%d", r%50), r)
			v.Get("m", fmt.Sprintf("b-%d", r%100))
		}
	}()
	wg.Wait()
	if n := s.GetMap("m").Size(); n != 150 {
		t.Fatalf("Size = %d, want 150", n)
	}
}

func TestStorePanicsOnMismatchedAssignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore with mismatched assignment did not panic")
		}
	}()
	NewStore(partition.New(8), partition.Assign(16, 2), nil)
}

func TestScanPartitionWithFilter(t *testing.T) {
	s := testStore()
	v := s.View(0)
	for i := 0; i < 200; i++ {
		v.Put("m", fmt.Sprintf("key-%d", i), i)
	}
	m := s.GetMap("m")
	seen := 0
	for p := 0; p < s.Partitioner().Count(); p++ {
		m.ScanPartitionWith(p, ScanOpts{Filter: func(e Entry) bool {
			return e.Value.(int)%2 == 0
		}}, func(e Entry) bool {
			if e.Value.(int)%2 != 0 {
				t.Fatalf("filter leaked odd value %v", e.Value)
			}
			seen++
			return true
		})
	}
	if seen != 100 {
		t.Fatalf("filtered scan saw %d entries, want 100", seen)
	}
}

func TestScanPartitionWithDoneStopsEarly(t *testing.T) {
	s := testStore()
	v := s.View(0)
	// Pile enough keys into one partition that the done poll (every 32
	// entries) must trigger mid-scan.
	var target int
	n := 0
	for i := 0; n < 500; i++ {
		p := s.Partitioner().Of(i)
		if n == 0 {
			target = p
		}
		if p == target {
			v.Put("m", i, i)
			n++
		}
	}
	done := make(chan struct{})
	visited := 0
	s.GetMap("m").ScanPartitionWith(target, ScanOpts{Done: done}, func(Entry) bool {
		visited++
		if visited == 10 {
			close(done)
		}
		return true
	})
	if visited >= 500 {
		t.Fatalf("done channel did not stop the scan (visited %d)", visited)
	}
}

func TestScanPartitionBackupWithFilter(t *testing.T) {
	s := testStore()
	if err := s.SetReplicated(); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	for i := 0; i < 50; i++ {
		v.Put("m", i, i)
	}
	m := s.GetMap("m")
	seen := 0
	for p := 0; p < s.Partitioner().Count(); p++ {
		m.ScanPartitionBackupWith(p, ScanOpts{Filter: func(e Entry) bool {
			return e.Value.(int) < 5
		}}, func(e Entry) bool {
			seen++
			return true
		})
	}
	if seen != 5 {
		t.Fatalf("filtered backup scan saw %d entries, want 5", seen)
	}
}

// Benchmarks for the batched vs unary write path: `make bench-smoke`
// watches these for regressions in the mirror-flush hot path.
func benchStore() (*Store, NodeView) {
	p := partition.New(128)
	s := NewStore(p, partition.Assign(128, 3), nil)
	return s, s.View(0)
}

func BenchmarkPutUnary(b *testing.B) {
	_, v := benchStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Put("m", i%4096, i)
	}
}

func BenchmarkPutBatch256(b *testing.B) {
	_, v := benchStore()
	ops := make([]Op, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range ops {
			ops[j] = Op{Key: (i*256 + j) % 4096, Value: j}
		}
		v.PutBatch("m", ops)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*256), "ns/op256")
}
