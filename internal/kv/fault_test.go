package kv

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSetReplicatedRejectsNonEmptyStore: enabling replication after data
// was written must fail with an error, not panic (the earlier entries
// would silently lack backup copies).
func TestSetReplicatedRejectsNonEmptyStore(t *testing.T) {
	s := testStore()
	s.View(0).Put("m", "k", 1)
	err := s.SetReplicated()
	if err == nil {
		t.Fatal("SetReplicated on a non-empty store succeeded")
	}
	if !strings.Contains(err.Error(), "non-empty") {
		t.Fatalf("error = %v", err)
	}
	if s.Replicated() {
		t.Fatal("store marked replicated despite the error")
	}
}

// TestSetReplicatedRetrofitsEmptyMaps: a map created before SetReplicated
// (but still empty) must gain backup segments, so later writes replicate
// instead of hitting nil backups.
func TestSetReplicatedRetrofitsEmptyMaps(t *testing.T) {
	s := testStore()
	m := s.GetMap("early") // exists, empty
	if err := s.SetReplicated(); err != nil {
		t.Fatal(err)
	}
	s.View(0).Put("early", "k", 7)
	if m.BackupSize() != 1 {
		t.Fatalf("backup size = %d, want 1", m.BackupSize())
	}
}

// stallHook blocks access to one partition; denyHook severs it.
type faultFunc func(from, owner, p int) error

func (f faultFunc) Access(from, owner, p int) error { return f(from, owner, p) }

func TestCheckAccessConsultsHook(t *testing.T) {
	s := testStore()
	sentinel := errors.New("severed")
	var deadPart = s.Partitioner().Of("victim")
	s.SetFaultHook(faultFunc(func(from, owner, p int) error {
		if p == deadPart {
			return sentinel
		}
		return nil
	}))

	if err := s.CheckAccess(ClientNode, deadPart); !errors.Is(err, sentinel) {
		t.Fatalf("CheckAccess = %v, want wrapped sentinel", err)
	}
	other := (deadPart + 1) % s.Partitioner().Count()
	if err := s.CheckAccess(ClientNode, other); err != nil {
		t.Fatalf("healthy partition errored: %v", err)
	}
	// Local access is never faulted.
	if err := s.CheckAccess(s.Assignment().Owner(deadPart), deadPart); err != nil {
		t.Fatalf("local access faulted: %v", err)
	}
	// Clearing the hook heals everything.
	s.SetFaultHook(nil)
	if err := s.CheckAccess(ClientNode, deadPart); err != nil {
		t.Fatalf("access after hook cleared: %v", err)
	}
}

func TestCheckBackupAccessTargetsBackupNode(t *testing.T) {
	s := testStore()
	p := 5
	owner := s.Assignment().Owner(p)
	backup := s.Assignment().Backup(p)
	if owner == backup {
		t.Skip("owner == backup in this layout")
	}
	// Sever only the owner node: primary access fails, backup succeeds.
	s.SetFaultHook(faultFunc(func(from, o, part int) error {
		if o == owner {
			return errors.New("owner down")
		}
		return nil
	}))
	if err := s.CheckAccess(ClientNode, p); err == nil {
		t.Fatal("primary access succeeded through severed owner")
	}
	if err := s.CheckBackupAccess(ClientNode, p); err != nil {
		t.Fatalf("backup access failed: %v", err)
	}
}

func TestScanPartitionBackupReadsReplica(t *testing.T) {
	s := testStore()
	if err := s.SetReplicated(); err != nil {
		t.Fatal(err)
	}
	v := s.View(0)
	v.Put("m", "a", 1)
	v.Put("m", "b", 2)
	m := s.GetMap("m")
	got := 0
	for p := 0; p < s.Partitioner().Count(); p++ {
		m.ScanPartitionBackup(p, func(e Entry) bool {
			got++
			return true
		})
	}
	if got != 2 {
		t.Fatalf("backup scan saw %d entries, want 2", got)
	}
	// Without replication the backup scan is empty, not a panic.
	s2 := testStore()
	s2.View(0).Put("m", "a", 1)
	s2.GetMap("m").ScanPartitionBackup(0, func(Entry) bool {
		t.Fatal("unreplicated backup scan produced an entry")
		return false
	})
}

func TestStalledPartitionBlocksAccess(t *testing.T) {
	s := testStore()
	s.SetFaultHook(faultFunc(func(from, owner, p int) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	}))
	start := time.Now()
	if err := s.CheckAccess(ClientNode, 0); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("stall not applied: %s", d)
	}
}
