package kv

import (
	"sync"
	"testing"
	"time"

	"squery/internal/partition"
	"squery/internal/transport"
)

// keyIn finds a key whose partition is p.
func keyIn(part partition.Partitioner, p int) partition.Key {
	for i := 0; ; i++ {
		if part.Of(i) == p {
			return i
		}
	}
}

// TestStaleEpochWriteRejectedAndRetried is the dedicated fencing test of
// the acceptance criteria: a write stamped with a pre-migration epoch is
// rejected with StaleEpochError, the view refreshes its table, and the
// retry lands on the new owner — observable in FenceStats and in the fact
// that the write ultimately succeeds.
func TestStaleEpochWriteRejectedAndRetried(t *testing.T) {
	part := partition.New(8)
	assign := partition.Assign(part.Count(), 2)
	s := NewStore(part, assign, nil)
	v := s.FencedView(0)
	if !v.Fenced() {
		t.Fatal("FencedView not fenced")
	}
	if v.FenceEpoch() != 0 {
		t.Fatalf("fresh fence epoch = %d, want 0", v.FenceEpoch())
	}

	// Reseat partition 0 behind the view's back: its cached table is now
	// one epoch stale for that partition.
	p := 0
	key := keyIn(part, p)
	oldOwner := assign.Owner(p)
	assign.Apply([]partition.Change{{Partition: p, Owner: 1 - oldOwner, Backup: oldOwner}})

	v.Put("m", key, "after-move")
	st := s.FenceStats()
	if st.Rejects == 0 {
		t.Fatal("stale-epoch write was not rejected")
	}
	if st.Retries == 0 {
		t.Fatal("rejected write was not retried")
	}
	if st.Forced != 0 {
		t.Fatalf("liveness backstop fired: %d forced writes", st.Forced)
	}
	if got, ok := v.Get("m", key); !ok || got != "after-move" {
		t.Fatalf("retried write lost: %v, %v", got, ok)
	}
	// The retry refreshed the cached table up to the live epoch.
	if v.FenceEpoch() != assign.Epoch() {
		t.Fatalf("fence epoch after retry = %d, want %d", v.FenceEpoch(), assign.Epoch())
	}

	// Writes to untouched partitions never paid the fencing toll.
	before := s.FenceStats()
	v.Put("m", keyIn(part, 3), "untouched")
	if after := s.FenceStats(); after.Rejects != before.Rejects {
		t.Fatal("write to an untouched partition was rejected")
	}
}

// TestUnfencedViewUnaffectedByEpochBumps: plain NodeViews (query clients)
// carry no fence and are never rejected.
func TestUnfencedViewUnaffectedByEpochBumps(t *testing.T) {
	part := partition.New(8)
	assign := partition.Assign(part.Count(), 2)
	s := NewStore(part, assign, nil)
	v := s.View(0)
	assign.Apply([]partition.Change{{Partition: 0, Owner: 1 - assign.Owner(0), Backup: assign.Owner(0)}})
	v.Put("m", keyIn(part, 0), 1)
	if st := s.FenceStats(); st.Rejects != 0 {
		t.Fatalf("unfenced write rejected %d time(s)", st.Rejects)
	}
}

// TestFencedBatchRetriesOnlyStaleGroups: a batch spanning a migrated and
// an untouched partition re-sends only the migrated partition's group.
func TestFencedBatchRetriesOnlyStaleGroups(t *testing.T) {
	part := partition.New(8)
	assign := partition.Assign(part.Count(), 2)
	s := NewStore(part, assign, nil)
	v := s.FencedView(0)

	moved, untouched := 0, 3
	k1, k2 := keyIn(part, moved), keyIn(part, untouched)
	assign.Apply([]partition.Change{{Partition: moved, Owner: 1 - assign.Owner(moved), Backup: assign.Owner(moved)}})

	v.PutBatch("m", []Op{{Key: k1, Value: "a"}, {Key: k2, Value: "b"}})
	st := s.FenceStats()
	if st.Rejects != 1 {
		t.Fatalf("batch rejects = %d, want 1 (only the moved partition's group)", st.Rejects)
	}
	if got, _ := v.Get("m", k1); got != "a" {
		t.Fatalf("moved-partition write lost: %v", got)
	}
	if got, _ := v.Get("m", k2); got != "b" {
		t.Fatalf("untouched-partition write lost: %v", got)
	}
}

// TestMigratingPartitionBlocksWritersUntilThaw: while a partition is
// frozen mid-migration, fenced writers spin on MigratingError and complete
// only after the thaw.
func TestMigratingPartitionBlocksWritersUntilThaw(t *testing.T) {
	part := partition.New(8)
	assign := partition.Assign(part.Count(), 2)
	s := NewStore(part, assign, nil)
	v := s.FencedView(0)
	p := 0
	key := keyIn(part, p)

	if !s.BeginPartitionMigration(p) {
		t.Fatal("BeginPartitionMigration refused a thawed partition")
	}
	if s.BeginPartitionMigration(p) {
		t.Fatal("BeginPartitionMigration double-froze a partition")
	}
	if !s.Migrating(p) {
		t.Fatal("Migrating(p) false while frozen")
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Put("m", key, "through")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("write completed while the partition was frozen")
	case <-time.After(5 * time.Millisecond):
	}
	s.EndPartitionMigration(p)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("write did not complete after thaw")
	}
	wg.Wait()
	if got, ok := v.Get("m", key); !ok || got != "through" {
		t.Fatalf("write lost across the freeze: %v, %v", got, ok)
	}
	if st := s.FenceStats(); st.Forced != 0 {
		t.Fatalf("freeze forced %d writes through", st.Forced)
	}
}

// TestShipPartitionMovesBytesOverTheWire: handoff payloads are real
// encoded bytes, counted by the transport like any other message.
func TestShipPartitionMovesBytesOverTheWire(t *testing.T) {
	part := partition.New(8)
	assign := partition.Assign(part.Count(), 2)
	tr := transport.NewSim(transport.SimConfig{})
	s := NewStore(part, assign, tr)
	v := s.View(0)
	p := 0
	n := 0
	for i := 0; n < 10; i++ {
		if part.Of(i) == p {
			v.Put("m", i, i)
			n++
		}
	}
	before := tr.Stats()
	ops, bytes := s.ShipPartition(p, assign.Owner(p), 1-assign.Owner(p))
	if ops != 10 {
		t.Fatalf("shipped %d ops, want 10", ops)
	}
	if bytes <= 0 {
		t.Fatalf("shipped %d bytes", bytes)
	}
	after := tr.Stats()
	if after.Messages != before.Messages+1 {
		t.Fatalf("ship sent %d messages, want 1", after.Messages-before.Messages)
	}
	if after.Bytes <= before.Bytes {
		t.Fatal("ship moved no bytes over the transport")
	}
}
