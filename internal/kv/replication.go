package kv

import (
	"fmt"

	"squery/internal/transport"
	"squery/internal/wire"
)

// Replication gives each partition a synchronous backup copy, notionally
// held by the partition's backup node (§V.A of the paper: snapshots are
// first written locally and replicated by the store; "if a node fails,
// the respective operator can be scheduled on the node holding that
// snapshot's replica"). Without replication, a node failure loses the
// primary copies of its partitions — the semantics FailNode enforces so
// that the simulation cannot silently rely on everything living in one
// process.

// SetReplicated enables synchronous backup copies. It must be called
// before any data is written — enabling it later would leave earlier
// entries unprotected — so a non-empty store is rejected with an error.
// Maps that already exist (but are empty) are retrofitted with backup
// segments.
func (s *Store) SetReplicated() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, m := range s.maps {
		if m.sizeLocked() > 0 {
			return fmt.Errorf("kv: SetReplicated on a non-empty store (map %q already holds entries)", name)
		}
	}
	s.replicated = true
	for _, m := range s.maps {
		if m.backups == nil {
			m.backups = make([]*segment, s.part.Count())
			for i := range m.backups {
				m.backups[i] = &segment{entries: make(map[string]Entry)}
			}
		}
	}
	return nil
}

// Replicated reports whether synchronous backups are enabled.
func (s *Store) Replicated() bool { return s.replicated }

func (m *Map) sizeLocked() int {
	n := 0
	for _, seg := range m.segs {
		n += len(seg.entries)
	}
	return n
}

// backupHop charges the synchronous replication message primary→backup:
// one message carrying ops operations and bytes payload bytes. A batched
// write replicates its whole partition group in one hop — the mirror of
// the batching on the primary path.
func (s *Store) backupHop(p, ops, bytes int) {
	owner := s.assign.Owner(p)
	backup := s.assign.Backup(p)
	if owner != backup {
		s.tr.Send(transport.Msg{From: owner, To: backup, Ops: ops, Bytes: bytes})
	}
}

// FailNode simulates the memory loss of a node: the primary copies of
// the given partitions vanish. With replication enabled each partition's
// backup copy is promoted to primary and re-seeded as a fresh backup;
// without replication the partitions come back empty. The caller
// (cluster.Fail) updates the partition table separately.
func (s *Store) FailNode(partitions []int) {
	s.mu.RLock()
	maps := make([]*Map, 0, len(s.maps))
	for _, m := range s.maps {
		maps = append(maps, m)
	}
	s.mu.RUnlock()
	for _, m := range maps {
		for _, p := range partitions {
			seg := m.segs[p]
			seg.mu.Lock()
			if s.replicated {
				bak := m.backups[p]
				bak.mu.Lock()
				seg.entries = bak.entries
				// Re-seed the backup with a fresh copy for the next
				// failure.
				cp := make(map[string]Entry, len(seg.entries))
				for k, v := range seg.entries {
					cp[k] = v
				}
				bak.entries = cp
				bak.mu.Unlock()
			} else {
				seg.entries = make(map[string]Entry)
			}
			// The entries map was replaced wholesale — inline maintenance
			// never saw the promoted (or emptied) contents, so re-derive,
			// and tell tap consumers to do the same.
			m.rebuildIndexesLocked(p, seg.entries)
			seg.seq++
			m.notifyReset(p)
			seg.mu.Unlock()
		}
	}
}

// replicatePut mirrors a write into the backup copy.
func (m *Map) replicatePut(p int, ks string, e Entry) {
	m.store.backupHop(p, 1, wire.Size(e.Key)+wire.Size(e.Value))
	bak := m.backups[p]
	bak.mu.Lock()
	bak.entries[ks] = e
	bak.mu.Unlock()
}

// replicateDelete mirrors a delete into the backup copy.
func (m *Map) replicateDelete(p int, ks string) {
	m.store.backupHop(p, 1, len(ks))
	bak := m.backups[p]
	bak.mu.Lock()
	delete(bak.entries, ks)
	bak.mu.Unlock()
}

// BackupSize returns the number of entries in backup copies of the map —
// diagnostics and tests only.
func (m *Map) BackupSize() int {
	if !m.store.replicated {
		return 0
	}
	n := 0
	for _, seg := range m.backups {
		seg.mu.RLock()
		n += len(seg.entries)
		seg.mu.RUnlock()
	}
	return n
}
