package metrics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PrometheusText renders every instrument in the registry as Prometheus
// text exposition format (the /metrics wire format external scrapers
// consume). The mapping follows Prometheus conventions:
//
//   - counter ("sub", "id", "metric") → squery_sub_metric_total{id="id"}
//   - gauge                           → squery_sub_metric{id="id"}
//   - histogram → a summary family squery_sub_metric_seconds with
//     quantile-labelled series from Histogram.Quantile plus _sum and
//     _count, all in seconds.
//
// Families are emitted sorted by name, each under a single # TYPE line;
// families with a registered description (promHelp) get a # HELP line
// first; series within a family keep the registry's deterministic
// (sorted-key) order. A nil registry renders as the empty exposition.
//
// promHelp documents the health-plane families: the lag/pressure gauges
// are the ones external alerting is expected to scrape, so their meaning
// and unit live in the exposition itself. Derived gauges are evaluated at
// render time, so scraped lag is current even when the stage is frozen.
var promHelp = map[string]string{
	"squery_operator_watermark_lag_us":      "Event-time lag of the operator's current watermark behind the wall clock, in microseconds.",
	"squery_operator_watermark_us":          "Current watermark of the operator instance as microseconds since the Unix epoch (0 before the first watermark).",
	"squery_operator_last_record_us":        "Wall-clock time the operator last processed a record, microseconds since the Unix epoch (0 when idle since start).",
	"squery_operator_inbox_depth":           "Records currently queued in the operator instance's bounded inbox channel.",
	"squery_operator_inbox_capacity":        "Capacity of the operator instance's bounded inbox channel.",
	"squery_operator_send_blocked_permille": "Share of the stage's lifetime spent blocked sending downstream, in permille.",
	"squery_operator_pressure_permille":     "Backpressure score of the stage: max of inbox fill fraction and blocked-send share, in permille.",
	"squery_operator_blocked_sends_total":   "Downstream sends that found the channel full and blocked.",
	"squery_operator_blocked_send_ns_total": "Total nanoseconds spent blocked in downstream sends.",
	"squery_sql_slow_queries_total":         "Queries whose wall time exceeded the configured slow-query threshold.",
	"squery_sub_active":                     "Standing-query subscriptions currently attached to the engine.",
	"squery_sub_delivered_total":            "Subscription events delivered to subscriber queues (snapshot and delta frames).",
	"squery_sub_shed_total":                 "Events dropped because a subscriber's bounded queue overflowed.",
	"squery_sub_resyncs_total":              "Full-snapshot resync frames sent to subscribers after a shed.",
	"squery_sub_failfast_total":             "Subscriptions closed by the fail-fast overflow policy.",
}

func (r *Registry) PrometheusText() string {
	type family struct {
		typ   string
		lines []string
	}
	fams := map[string]*family{}
	add := func(name, typ, line string) {
		f := fams[name]
		if f == nil {
			f = &family{typ: typ}
			fams[name] = f
		}
		f.lines = append(f.lines, line)
	}
	for _, p := range r.Points() {
		base := "squery_" + promName(p.Key.Subsystem) + "_" + promName(p.Key.Metric)
		label := `{id="` + promLabel(p.Key.ID) + `"}`
		switch p.Kind {
		case "counter":
			name := base + "_total"
			add(name, "counter", fmt.Sprintf("%s%s %d", name, label, p.Value))
		case "gauge":
			add(base, "gauge", fmt.Sprintf("%s%s %d", base, label, p.Value))
		case "histogram":
			name := base + "_seconds"
			s := p.Summary
			qs := make([]float64, 0, len(s.Quantiles))
			for q := range s.Quantiles {
				if q > 0 { // p0 (the minimum) has no summary-quantile analogue
					qs = append(qs, q)
				}
			}
			sort.Float64s(qs)
			for _, q := range qs {
				add(name, "summary", fmt.Sprintf(`%s{id="%s",quantile="%s"} %s`,
					name, promLabel(p.Key.ID), strconv.FormatFloat(q, 'g', -1, 64),
					promFloat(s.Quantiles[q].Seconds())))
			}
			add(name, "summary", fmt.Sprintf("%s_sum%s %s", name, label, promFloat(s.Sum.Seconds())))
			add(name, "summary", fmt.Sprintf("%s_count%s %d", name, label, s.Count))
		}
	}
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		if help := promHelp[n]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, fams[n].typ)
		for _, l := range fams[n].lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// promName maps an internal subsystem/metric name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_]; anything else becomes '_'.
func promName(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func promLabel(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// promFloat renders a float sample value ('g' keeps it compact and the
// exposition parser accepts scientific notation).
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
