package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestPrometheusTextRendersAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("checkpoint", "job", "commits").Add(3)
	r.Gauge("operator", "map/0", "node").Set(2)
	h := r.Histogram("checkpoint", "job", "phase1")
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	out := r.PrometheusText()

	if err := ValidatePrometheusText(out); err != nil {
		t.Fatalf("output does not validate: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE squery_checkpoint_commits_total counter",
		`squery_checkpoint_commits_total{id="job"} 3`,
		"# TYPE squery_operator_node gauge",
		`squery_operator_node{id="map/0"} 2`,
		"# TYPE squery_checkpoint_phase1_seconds summary",
		`squery_checkpoint_phase1_seconds{id="job",quantile="0.5"}`,
		`squery_checkpoint_phase1_seconds{id="job",quantile="0.99"}`,
		`squery_checkpoint_phase1_seconds_count{id="job"} 100`,
		`squery_checkpoint_phase1_seconds_sum{id="job"} 5.05`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with multiple ids.
	r.Counter("checkpoint", "job2", "commits").Inc()
	out = r.PrometheusText()
	if got := strings.Count(out, "# TYPE squery_checkpoint_commits_total counter"); got != 1 {
		t.Fatalf("TYPE line appears %d times, want 1", got)
	}
	if err := ValidatePrometheusText(out); err != nil {
		t.Fatalf("two-id output does not validate: %v", err)
	}
}

func TestPrometheusTextEscapesAndSanitizes(t *testing.T) {
	r := NewRegistry()
	r.Counter("sub-sys", `we"ird\id`+"\n", "hits").Inc()
	out := r.PrometheusText()
	if err := ValidatePrometheusText(out); err != nil {
		t.Fatalf("escaped output does not validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "squery_sub_sys_hits_total") {
		t.Fatalf("subsystem not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `id="we\"ird\\id\n"`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestPrometheusTextNilRegistry(t *testing.T) {
	var r *Registry
	if out := r.PrometheusText(); out != "" {
		t.Fatalf("nil registry rendered %q", out)
	}
	if err := ValidatePrometheusText(""); err != nil {
		t.Fatalf("empty exposition invalid: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_declared 1",
		"# TYPE x counter\nx 1",                         // counter without _total
		"# TYPE y_total counter\ny_total{open 1",        // broken label block
		"# TYPE z gauge\nz notafloat",                   // bad value
		"# TYPE w gauge\n# TYPE w counter\nw_total 1",   // duplicate TYPE
		"# TYPE v summary\nv{quantile=\"0.5\"} 1\nvx 2", // undeclared family
	}
	for _, text := range bad {
		if err := ValidatePrometheusText(text); err == nil {
			t.Fatalf("accepted malformed exposition:\n%s", text)
		}
	}
}

// TestHistogramQuantileTailSet pins the satellite contract: p50/p95/p99/
// p999 all come from the log-bucket quantile estimator and are ordered.
func TestHistogramQuantileTailSet(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10_000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	p95 := h.Quantile(0.95)
	p99 := h.Quantile(0.99)
	p999 := h.Quantile(0.999)
	if !(p50 < p95 && p95 < p99 && p99 < p999) {
		t.Fatalf("quantiles not ordered: p50=%s p95=%s p99=%s p999=%s", p50, p95, p99, p999)
	}
	// The log buckets guarantee ~1.6%% relative error; allow 5%%.
	within := func(got time.Duration, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return float64(diff) <= 0.05*float64(want)
	}
	if !within(p95, 9500*time.Microsecond) || !within(p999, 9990*time.Microsecond) {
		t.Fatalf("tail quantiles off: p95=%s p999=%s", p95, p999)
	}
	s := h.Snapshot()
	if _, ok := s.Quantiles[0.95]; !ok {
		t.Fatalf("snapshot missing p95: %v", s.Quantiles)
	}
	if s.Sum != h.Sum() || s.Sum == 0 {
		t.Fatalf("snapshot sum %s vs %s", s.Sum, h.Sum())
	}
}
