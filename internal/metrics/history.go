package metrics

import (
	"sync"
	"time"
)

// Metric history: the registry can retain a fixed-size ring of periodic
// whole-registry snapshots, turning instantaneous counters and gauges into
// an in-memory time series. Consumers (sys.history, /statusz sparklines)
// compute rate() from consecutive snapshots; the ring itself stores plain
// Points so a snapshot costs one Points() call and no per-instrument
// bookkeeping on hot paths. Derived gauges are evaluated at capture time,
// so freshness-sensitive series (watermark lag, inbox depth) are retained
// with correct per-tick values even while the instrumented stage is frozen.

// HistorySnapshot is one retained capture of every instrument.
type HistorySnapshot struct {
	At     time.Time
	Points []Point
}

// maxHistorySnapshots bounds the ring regardless of the window/interval
// ratio: 512 snapshots at the default 1s interval is ~8.5 minutes, and the
// memory cost stays proportional to instrument count, not runtime.
const maxHistorySnapshots = 512

// historyRing is the retention state embedded in a Registry.
type historyRing struct {
	mu    sync.Mutex
	buf   []HistorySnapshot
	start int
	n     int
	stop  chan struct{}
	done  chan struct{}
}

// Retain starts (or restarts) periodic snapshot capture every interval,
// keeping window/interval snapshots (at least 2, at most 512). A first
// snapshot is captured synchronously so sys.history is non-empty as soon
// as retention is on. Call StopRetain (or pass a new Retain) to stop the
// background ticker; the ring's contents survive a stop.
func (r *Registry) Retain(interval, window time.Duration) {
	if r == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	if window < interval {
		window = interval
	}
	capacity := int(window / interval)
	if capacity < 2 {
		capacity = 2
	}
	if capacity > maxHistorySnapshots {
		capacity = maxHistorySnapshots
	}
	r.StopRetain()
	r.hist.mu.Lock()
	r.hist.resize(capacity)
	stop := make(chan struct{})
	done := make(chan struct{})
	r.hist.stop = stop
	r.hist.done = done
	r.hist.mu.Unlock()
	r.Capture(time.Now())
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				r.Capture(now)
			case <-stop:
				return
			}
		}
	}()
}

// StopRetain stops the background capture goroutine, if any, and waits for
// it to exit. The retained snapshots remain readable.
func (r *Registry) StopRetain() {
	if r == nil {
		return
	}
	r.hist.mu.Lock()
	stop, done := r.hist.stop, r.hist.done
	r.hist.stop, r.hist.done = nil, nil
	r.hist.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Capture appends one snapshot of every instrument to the history ring,
// evicting the oldest when full. Exported so tests (and callers that want
// snapshot timing under their own control) can capture deterministically
// without a ticker; a Capture before any Retain sizes the ring to the
// default capacity.
func (r *Registry) Capture(now time.Time) {
	if r == nil {
		return
	}
	snap := HistorySnapshot{At: now, Points: r.Points()}
	r.hist.mu.Lock()
	if len(r.hist.buf) == 0 {
		r.hist.resize(maxHistorySnapshots / 4)
	}
	if r.hist.n < len(r.hist.buf) {
		r.hist.buf[(r.hist.start+r.hist.n)%len(r.hist.buf)] = snap
		r.hist.n++
	} else {
		r.hist.buf[r.hist.start] = snap
		r.hist.start = (r.hist.start + 1) % len(r.hist.buf)
	}
	r.hist.mu.Unlock()
}

// History returns the retained snapshots, oldest first. The returned slice
// is a copy; the Points inside are the captured values and are not
// mutated after capture.
func (r *Registry) History() []HistorySnapshot {
	if r == nil {
		return nil
	}
	r.hist.mu.Lock()
	defer r.hist.mu.Unlock()
	out := make([]HistorySnapshot, 0, r.hist.n)
	for i := 0; i < r.hist.n; i++ {
		out = append(out, r.hist.buf[(r.hist.start+i)%len(r.hist.buf)])
	}
	return out
}

// resize re-sizes the ring preserving the newest snapshots. Caller holds
// hist.mu.
func (h *historyRing) resize(capacity int) {
	if capacity == len(h.buf) {
		return
	}
	old := make([]HistorySnapshot, 0, h.n)
	for i := 0; i < h.n; i++ {
		old = append(old, h.buf[(h.start+i)%len(h.buf)])
	}
	if len(old) > capacity {
		old = old[len(old)-capacity:]
	}
	h.buf = make([]HistorySnapshot, capacity)
	copy(h.buf, old)
	h.start = 0
	h.n = len(old)
}

// Rate computes the per-second rate of a counter between two snapshots:
// (curr-prev)/Δt. Returns 0 when Δt is not positive or the counter reset.
func Rate(prev, curr int64, prevAt, currAt time.Time) float64 {
	dt := currAt.Sub(prevAt).Seconds()
	if dt <= 0 || curr < prev {
		return 0
	}
	return float64(curr-prev) / dt
}
