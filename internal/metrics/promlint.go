package metrics

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text exposition grammar, as much of it as we emit: metric
// names, optional {label="value",...} set, a float value, an optional
// timestamp.
var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)( [0-9]+)?$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="((?:[^"\\]|\\.)*)"$`)
)

// ValidatePrometheusText checks that text parses as Prometheus text
// exposition format (version 0.0.4): every sample line is well-formed,
// every sample's family has a preceding # TYPE declaration of a known
// type, HELP comments are well-formed, unique, and precede their family's
// TYPE line, counter samples end in _total, and values parse as floats.
// CI's obs-plane smoke test runs scraped /metrics output through it.
func ValidatePrometheusText(text string) error {
	types := map[string]string{}
	helps := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", ln+1, line)
				}
				name, typ := fields[2], fields[3]
				if !promNameRe.MatchString(name) {
					return fmt.Errorf("line %d: bad family name %q", ln+1, name)
				}
				switch typ {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", ln+1, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
				}
				types[name] = typ
			}
			if len(fields) >= 2 && fields[1] == "HELP" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: malformed HELP comment %q (need a name and non-empty text)", ln+1, line)
				}
				name := fields[2]
				if !promNameRe.MatchString(name) {
					return fmt.Errorf("line %d: bad family name in HELP %q", ln+1, name)
				}
				if helps[name] {
					return fmt.Errorf("line %d: duplicate HELP for %q", ln+1, name)
				}
				if _, typed := types[name]; typed {
					return fmt.Errorf("line %d: HELP for %q appears after its TYPE", ln+1, name)
				}
				helps[name] = true
			}
			continue // free comments are unconstrained
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", ln+1, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			if value != "NaN" && value != "+Inf" && value != "-Inf" {
				return fmt.Errorf("line %d: bad value %q", ln+1, value)
			}
		}
		if labels != "" {
			for _, lv := range splitPromLabels(labels) {
				if !promLabelRe.MatchString(lv) {
					return fmt.Errorf("line %d: bad label pair %q", ln+1, lv)
				}
			}
		}
		fam, typ := promFamily(name, types)
		if typ == "" {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", ln+1, name)
		}
		if typ == "counter" && fam == name && !strings.HasSuffix(name, "_total") {
			return fmt.Errorf("line %d: counter %q does not end in _total", ln+1, name)
		}
	}
	return nil
}

// promFamily resolves a sample name to its declared family, accepting the
// summary/histogram child suffixes.
func promFamily(name string, types map[string]string) (string, string) {
	if t, ok := types[name]; ok {
		return name, t
	}
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t, ok := types[base]; ok && (t == "summary" || t == "histogram") {
			return base, t
		}
	}
	return "", ""
}

// splitPromLabels splits a label body on commas outside quoted values.
func splitPromLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
