package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGaugeFuncEvaluatedAtReadTime(t *testing.T) {
	r := NewRegistry()
	var v int64
	r.GaugeFunc("operator", "src/0", "inbox_depth", func() int64 { return v })
	v = 7
	vals := r.Values("operator")
	if got := vals["src/0"]["inbox_depth"]; got != 7 {
		t.Fatalf("derived gauge in Values = %d, want 7", got)
	}
	v = 42
	found := false
	for _, p := range r.Points() {
		if p.Key.Metric == "inbox_depth" {
			found = true
			if p.Kind != "gauge" || p.Value != 42 {
				t.Fatalf("derived point = %+v, want gauge 42", p)
			}
		}
	}
	if !found {
		t.Fatal("derived gauge missing from Points")
	}
	// Re-registration replaces the function (workers restart).
	r.GaugeFunc("operator", "src/0", "inbox_depth", func() int64 { return -1 })
	if got := r.Values("operator")["src/0"]["inbox_depth"]; got != -1 {
		t.Fatalf("re-registered derived gauge = %d, want -1", got)
	}
	// nil registry and nil fn are no-ops.
	var nilr *Registry
	nilr.GaugeFunc("a", "b", "c", func() int64 { return 1 })
	r.GaugeFunc("a", "b", "c", nil)
}

func TestHistoryCaptureRingEvictsOldest(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sql", "q", "rows")
	base := time.Unix(1000, 0)
	// Size the ring to 3 via Retain, then stop the ticker and drive
	// captures manually for determinism.
	r.Retain(time.Hour, 3*time.Hour)
	r.StopRetain()
	if n := len(r.History()); n != 1 {
		t.Fatalf("Retain should capture one snapshot synchronously, got %d", n)
	}
	for i := 1; i <= 5; i++ {
		c.Add(10)
		r.Capture(base.Add(time.Duration(i) * time.Second))
	}
	h := r.History()
	if len(h) != 3 {
		t.Fatalf("ring retained %d snapshots, want 3", len(h))
	}
	if !h[0].At.Before(h[1].At) || !h[1].At.Before(h[2].At) {
		t.Fatalf("snapshots not oldest-first: %v %v %v", h[0].At, h[1].At, h[2].At)
	}
	find := func(s HistorySnapshot) int64 {
		for _, p := range s.Points {
			if p.Key == (InstrumentKey{"sql", "q", "rows"}) {
				return p.Value
			}
		}
		t.Fatalf("counter missing from snapshot at %v", s.At)
		return 0
	}
	if find(h[0]) != 30 || find(h[2]) != 50 {
		t.Fatalf("retained values %d..%d, want 30..50", find(h[0]), find(h[2]))
	}
	if rate := Rate(find(h[1]), find(h[2]), h[1].At, h[2].At); rate != 10 {
		t.Fatalf("rate between snapshots = %v rows/s, want 10", rate)
	}
	// Counter reset and zero-dt guard.
	if Rate(50, 30, h[1].At, h[2].At) != 0 || Rate(30, 50, h[1].At, h[1].At) != 0 {
		t.Fatal("Rate should clamp resets and zero dt to 0")
	}
}

func TestRetainTickerCapturesPeriodically(t *testing.T) {
	r := NewRegistry()
	r.Gauge("operator", "a/0", "watermark_us").Set(5)
	r.Retain(2*time.Millisecond, 100*time.Millisecond)
	defer r.StopRetain()
	deadline := time.Now().Add(2 * time.Second)
	for len(r.History()) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker captured only %d snapshots", len(r.History()))
		}
		time.Sleep(time.Millisecond)
	}
	r.StopRetain()
	n := len(r.History())
	time.Sleep(10 * time.Millisecond)
	if len(r.History()) != n {
		t.Fatal("captures continued after StopRetain")
	}
	// Restarting retention must keep working (Retain stops the old ticker).
	r.Retain(time.Millisecond, 10*time.Millisecond)
	r.Retain(time.Millisecond, 10*time.Millisecond)
	r.StopRetain()
	r.StopRetain() // idempotent
}

// TestHistoryRaceRetainVsScans is the race test behind sys.history: ticker
// captures, derived-gauge evaluation, and concurrent readers all running
// against one registry. Run with -race.
func TestHistoryRaceRetainVsScans(t *testing.T) {
	r := NewRegistry()
	var depth int64 // accessed without atomics would race; keep it fixed
	r.GaugeFunc("operator", "s/0", "inbox_depth", func() int64 { return depth })
	c := r.Counter("operator", "s/0", "records_in")
	r.Retain(time.Millisecond, 50*time.Millisecond)
	defer r.StopRetain()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() { // writers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					r.Capture(time.Now())
				}
			}
		}()
		go func() { // readers: the sys.history / statusz access paths
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, s := range r.History() {
						_ = len(s.Points)
					}
					_ = r.Values("operator")
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestPrometheusHelpLines(t *testing.T) {
	r := NewRegistry()
	r.Gauge("operator", "src/0", "watermark_lag_us").Set(1234)
	r.Counter("operator", "src/0", "blocked_sends").Inc()
	text := r.PrometheusText()
	if !strings.Contains(text, "# HELP squery_operator_watermark_lag_us ") {
		t.Fatalf("missing HELP for lag gauge:\n%s", text)
	}
	help := strings.Index(text, "# HELP squery_operator_watermark_lag_us")
	typ := strings.Index(text, "# TYPE squery_operator_watermark_lag_us")
	if help < 0 || typ < 0 || help > typ {
		t.Fatalf("HELP must precede TYPE:\n%s", text)
	}
	if err := ValidatePrometheusText(text); err != nil {
		t.Fatalf("exposition with HELP does not validate: %v", err)
	}
}

func TestValidateHelpLines(t *testing.T) {
	bad := []string{
		"# HELP\n",
		"# HELP only_name\n",
		"# HELP 0bad name text\n",
		"# HELP x d\n# HELP x d\n",
		"# TYPE x gauge\n# HELP x late\nx 1\n",
	}
	for _, text := range bad {
		if err := ValidatePrometheusText(text); err == nil {
			t.Fatalf("expected error for %q", text)
		}
	}
	good := "# HELP x docs with several words\n# TYPE x gauge\nx 1\n"
	if err := ValidatePrometheusText(good); err != nil {
		t.Fatalf("valid HELP rejected: %v", err)
	}
}
