package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("kv", "p0", "gets")
	c2 := r.Counter("kv", "p0", "gets")
	if c1 != c2 {
		t.Fatal("same key returned distinct counters")
	}
	if r.Counter("kv", "p1", "gets") == c1 {
		t.Fatal("distinct ids shared a counter")
	}
	if r.Gauge("kv", "p0", "node") == nil || r.Histogram("kv", "p0", "lat") == nil {
		t.Fatal("gauge/histogram creation failed")
	}
	if r.Log("queries", 8) != r.Log("queries", 99) {
		t.Fatal("same name returned distinct logs")
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "b", "c")
	g := r.Gauge("a", "b", "c")
	h := r.Histogram("a", "b", "c")
	l := r.Log("x", 4)
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(1)
	h.Record(time.Second)
	l.Append(map[string]any{"k": 1})
	if c.Value() != 0 || g.Value() != 0 || l.Len() != 0 {
		t.Fatal("nil instruments retained state")
	}
	if r.Points() != nil || r.Values("a") != nil || r.HistogramsIn("a") != nil {
		t.Fatal("nil registry produced snapshots")
	}
	if !strings.Contains(r.Dump(), "disabled") {
		t.Fatal("nil registry dump missing disabled marker")
	}
}

func TestEventLogRing(t *testing.T) {
	r := NewRegistry()
	l := r.Log("ckpt", 3)
	for i := 0; i < 5; i++ {
		l.Append(map[string]any{"i": i})
	}
	ev := l.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d events, want 3", len(ev))
	}
	// Oldest-first with monotone sequence numbers; the first two evicted.
	for j, e := range ev {
		if e.Seq != uint64(3+j) || e.Fields["i"] != 2+j {
			t.Fatalf("event %d = seq %d fields %v", j, e.Seq, e.Fields)
		}
	}
}

func TestRegistryValuesAndDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("kv", "p3", "gets").Add(4)
	r.Gauge("operator", "map/0", "node").Set(2)
	r.Histogram("sql", "exec", "latency").Record(time.Millisecond)
	r.Log("queries", 4).Append(map[string]any{"q": "SELECT 1"})

	vals := r.Values("kv")
	if vals["p3"]["gets"] != 4 {
		t.Fatalf("Values(kv) = %v", vals)
	}
	if len(r.Values("operator")) != 1 || len(r.HistogramsIn("sql")) != 1 {
		t.Fatal("subsystem filtering broken")
	}
	pts := r.Points()
	if len(pts) != 3 {
		t.Fatalf("Points len = %d, want 3", len(pts))
	}
	// Points are sorted by (subsystem, id, metric).
	if pts[0].Key.Subsystem != "kv" || pts[1].Key.Subsystem != "operator" || pts[2].Key.Subsystem != "sql" {
		t.Fatalf("Points order = %v", pts)
	}
	d := r.Dump()
	for _, want := range []string{"kv/p3/gets", "operator/map/0/node", "sql/exec/latency", "log queries (1 events)", "q=SELECT 1"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Dump missing %q:\n%s", want, d)
		}
	}
}

// TestRegistryHammer races get-or-create, instrument updates, and snapshots
// against each other; it exists to be run under -race (the `make race` gate).
// The cross-layer variant that also scans sys.partitions through SQL lives
// at the repo root (registry_race_test.go) to avoid an import cycle.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := []string{"p0", "p1", "p2", "p3"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[i%len(ids)]
				r.Counter("kv", id, "gets").Inc()
				r.Gauge("kv", id, "node").Set(int64(w))
				r.Histogram("kv", id, "lat").Record(time.Duration(i))
				r.Log("events", 64).Append(map[string]any{"w": w, "i": i})
			}
		}(w)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Points()
					_ = r.Values("kv")
					_ = r.Dump()
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if r.Counter("kv", "p0", "gets").Value() == 0 {
		t.Fatal("no updates recorded")
	}
}
