package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file applies the paper's own thesis to the processor itself: the
// runtime's telemetry — operator throughput, barrier-alignment stalls,
// checkpoint phase timings, per-partition KV and query-scan activity — is
// collected in a concurrent Registry instead of ad-hoc fields, and exposed
// through the same SQL surface as user state (the sys.* virtual tables
// registered by the engine).
//
// Instruments are keyed by (subsystem, id, metric): the subsystem names the
// layer ("operator", "checkpoint", "kv", "sql"), the id names the instance
// within it ("orderstate/2", "p17", a job name), and the metric names the
// measurement. Hot paths resolve an instrument once and then pay a single
// atomic op per event; a nil *Registry yields nil instruments whose methods
// are no-ops, so instrumentation can be compiled in unconditionally and
// disabled wholesale (the no-op-registry baseline of the overhead
// experiment in EXPERIMENTS.md).

// InstrumentKey identifies one instrument in a Registry.
type InstrumentKey struct {
	Subsystem string
	ID        string
	Metric    string
}

// String renders the key in the dump format: subsystem/id/metric.
func (k InstrumentKey) String() string {
	return k.Subsystem + "/" + k.ID + "/" + k.Metric
}

// Counter is a monotonically increasing event count. The nil counter is a
// valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add records n events.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc records one event.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The nil gauge is a valid no-op
// instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the current value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Event is one entry of an EventLog: an opaque field set plus a
// registry-assigned monotone sequence number.
type Event struct {
	Seq    uint64
	Fields map[string]any
}

// EventLog is a bounded ring of structured events — the backing store of
// row-per-event system tables (sys.checkpoints, sys.queries). When full,
// the oldest event is evicted. The nil log is a valid no-op instrument.
type EventLog struct {
	mu    sync.Mutex
	cap   int
	seq   uint64
	buf   []rawEvent
	start int // index of the oldest event
	n     int
}

// Fielder lets hot paths append a typed event whose field map is only
// materialized when the log is read (sys.* scans, Dump) — one struct
// allocation instead of a map with boxed values per event.
type Fielder interface {
	EventFields() map[string]any
}

// rawEvent is the stored form: fields is either a map[string]any or a
// Fielder resolved at read time.
type rawEvent struct {
	seq    uint64
	fields any
}

func (e rawEvent) materialize() Event {
	switch f := e.fields.(type) {
	case map[string]any:
		return Event{Seq: e.seq, Fields: f}
	case Fielder:
		return Event{Seq: e.seq, Fields: f.EventFields()}
	default:
		return Event{Seq: e.seq}
	}
}

// Append records one event. The fields map is stored as-is; callers must
// not mutate it afterwards.
func (l *EventLog) Append(fields map[string]any) {
	l.append(fields)
}

// AppendFielder records one typed event; f.EventFields() is called lazily
// by readers, so f must be immutable after the call.
func (l *EventLog) AppendFielder(f Fielder) {
	l.append(f)
}

func (l *EventLog) append(fields any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	e := rawEvent{seq: l.seq, fields: fields}
	if l.n < l.cap {
		l.buf[(l.start+l.n)%l.cap] = e
		l.n++
	} else {
		l.buf[l.start] = e
		l.start = (l.start + 1) % l.cap
	}
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.start+i)%l.cap].materialize())
	}
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Registry is a concurrent get-or-create registry of counters, gauges,
// histograms and event logs. All methods are safe for concurrent use; the
// nil *Registry returns nil (no-op) instruments everywhere.
type Registry struct {
	mu       sync.RWMutex
	counters map[InstrumentKey]*Counter
	gauges   map[InstrumentKey]*Gauge
	derived  map[InstrumentKey]func() int64
	hists    map[InstrumentKey]*Histogram
	logs     map[string]*EventLog

	hist historyRing // periodic snapshot ring behind Retain / sys.history
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[InstrumentKey]*Counter),
		gauges:   make(map[InstrumentKey]*Gauge),
		derived:  make(map[InstrumentKey]func() int64),
		hists:    make(map[InstrumentKey]*Histogram),
		logs:     make(map[string]*EventLog),
	}
}

// GaugeFunc registers a derived gauge: fn is evaluated at read time
// (Values, Points, history snapshots, the Prometheus exposition), so the
// reported value is always current without any hot-path writes — the
// instrument behind freshness-sensitive series like watermark lag and
// queue depth. Re-registering the same key replaces the function (workers
// re-resolve instruments on every restart). fn must be safe for
// concurrent use and must not call back into the registry.
func (r *Registry) GaugeFunc(subsystem, id, metric string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	k := InstrumentKey{subsystem, id, metric}
	r.mu.Lock()
	r.derived[k] = fn
	r.mu.Unlock()
}

// Counter returns (creating if absent) the counter for the key.
func (r *Registry) Counter(subsystem, id, metric string) *Counter {
	if r == nil {
		return nil
	}
	k := InstrumentKey{subsystem, id, metric}
	r.mu.RLock()
	c := r.counters[k]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[k]; c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if absent) the gauge for the key.
func (r *Registry) Gauge(subsystem, id, metric string) *Gauge {
	if r == nil {
		return nil
	}
	k := InstrumentKey{subsystem, id, metric}
	r.mu.RLock()
	g := r.gauges[k]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[k]; g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if absent) the histogram for the key.
func (r *Registry) Histogram(subsystem, id, metric string) *Histogram {
	if r == nil {
		return nil
	}
	k := InstrumentKey{subsystem, id, metric}
	r.mu.RLock()
	h := r.hists[k]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[k]; h == nil {
		h = NewHistogram()
		r.hists[k] = h
	}
	return h
}

// Log returns (creating if absent) the named event log. The capacity is
// applied only on creation; later calls may pass any value.
func (r *Registry) Log(name string, capacity int) *EventLog {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	l := r.logs[name]
	r.mu.RUnlock()
	if l != nil {
		return l
	}
	if capacity < 1 {
		capacity = 128
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if l = r.logs[name]; l == nil {
		l = &EventLog{cap: capacity, buf: make([]rawEvent, capacity)}
		r.logs[name] = l
	}
	return l
}

// Values returns a point-in-time copy of every counter and gauge value in
// the subsystem, keyed by instrument id then metric name. Gauges shadow
// counters on (impossible by convention) key collisions.
func (r *Registry) Values(subsystem string) map[string]map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]map[string]int64)
	put := func(k InstrumentKey, v int64) {
		m := out[k.ID]
		if m == nil {
			m = make(map[string]int64)
			out[k.ID] = m
		}
		m[k.Metric] = v
	}
	r.mu.RLock()
	for k, c := range r.counters {
		if k.Subsystem == subsystem {
			put(k, c.Value())
		}
	}
	for k, g := range r.gauges {
		if k.Subsystem == subsystem {
			put(k, g.Value())
		}
	}
	fns := make(map[InstrumentKey]func() int64)
	for k, fn := range r.derived {
		if k.Subsystem == subsystem {
			fns[k] = fn
		}
	}
	r.mu.RUnlock()
	// Derived gauges run user code; evaluate them outside the registry lock.
	for k, fn := range fns {
		put(k, fn())
	}
	return out
}

// HistogramsIn returns the subsystem's histograms keyed by instrument id
// then metric name. The histograms are live (shared), not copies.
func (r *Registry) HistogramsIn(subsystem string) map[string]map[string]*Histogram {
	if r == nil {
		return nil
	}
	out := make(map[string]map[string]*Histogram)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for k, h := range r.hists {
		if k.Subsystem != subsystem {
			continue
		}
		m := out[k.ID]
		if m == nil {
			m = make(map[string]*Histogram)
			out[k.ID] = m
		}
		m[k.Metric] = h
	}
	return out
}

// Point is one instrument's snapshot in a registry dump.
type Point struct {
	Key  InstrumentKey
	Kind string // "counter", "gauge" or "histogram"
	// Value is the counter/gauge value; for histograms it is the
	// observation count.
	Value int64
	// Summary is the percentile snapshot of a histogram (nil otherwise).
	Summary *Summary
}

// Points returns a deterministic (sorted by key) snapshot of every
// instrument in the registry. Histograms with zero observations are
// included — an instrument's existence is itself information.
func (r *Registry) Points() []Point {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	pts := make([]Point, 0, len(r.counters)+len(r.gauges)+len(r.derived)+len(r.hists))
	for k, c := range r.counters {
		pts = append(pts, Point{Key: k, Kind: "counter", Value: c.Value()})
	}
	for k, g := range r.gauges {
		pts = append(pts, Point{Key: k, Kind: "gauge", Value: g.Value()})
	}
	fns := make(map[InstrumentKey]func() int64, len(r.derived))
	for k, fn := range r.derived {
		fns[k] = fn
	}
	hists := make(map[InstrumentKey]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()
	// Derived gauges run user code (channel length reads, clock reads);
	// evaluate them outside the registry lock for the same reason as
	// histogram snapshots below.
	for k, fn := range fns {
		pts = append(pts, Point{Key: k, Kind: "gauge", Value: fn()})
	}
	// Histogram snapshots take the histogram's own lock; do it outside the
	// registry lock so a slow summary never blocks instrument creation.
	for k, h := range hists {
		s := h.Snapshot()
		pts = append(pts, Point{Key: k, Kind: "histogram", Value: int64(s.Count), Summary: &s})
	}
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i].Key, pts[j].Key
		if a.Subsystem != b.Subsystem {
			return a.Subsystem < b.Subsystem
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Metric < b.Metric
	})
	return pts
}

// Dump renders the full registry as plain text: one line per counter and
// gauge, one summary line per histogram, then each event log. This is the
// format the -metrics flags of cmd/squery, cmd/squery-bench and
// cmd/squery-soak emit.
func (r *Registry) Dump() string {
	if r == nil {
		return "(metrics disabled)\n"
	}
	var b strings.Builder
	for _, p := range r.Points() {
		switch p.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-48s %s\n", p.Key, p.Summary)
		default:
			fmt.Fprintf(&b, "%-48s %d\n", p.Key, p.Value)
		}
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.logs))
	for n := range r.logs {
		names = append(names, n)
	}
	logs := make(map[string]*EventLog, len(r.logs))
	for n, l := range r.logs {
		logs[n] = l
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		events := logs[n].Events()
		fmt.Fprintf(&b, "log %s (%d events):\n", n, len(events))
		for _, e := range events {
			keys := make([]string, 0, len(e.Fields))
			for k := range e.Fields {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "  #%d", e.Seq)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%v", k, e.Fields[k])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
