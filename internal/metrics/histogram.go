// Package metrics provides the latency and throughput instrumentation used
// by every experiment in the S-QUERY reproduction: a concurrent,
// log-bucketed histogram that answers the percentile queries the paper
// plots (0th through 99.99th), and throughput meters for sustainable-rate
// measurements.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram records durations into exponentially sized buckets and answers
// quantile queries. It is safe for concurrent use. The bucket layout gives a
// relative error below ~2% across the nanosecond-to-minute range, which is
// far below the run-to-run variance of any experiment here.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	count  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

// bucketsPerOctave trades memory for resolution: 32 sub-buckets per power
// of two bounds the relative quantile error at 1/64 ≈ 1.6%.
const bucketsPerOctave = 32

// numBuckets covers durations up to ~2^40 ns (~18 minutes).
const numBuckets = 41 * bucketsPerOctave

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, numBuckets),
		min:    math.MaxInt64,
	}
}

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	n := uint64(d)
	if n < bucketsPerOctave {
		return int(n)
	}
	// Position = octave * bucketsPerOctave + sub-bucket within octave.
	exp := 63 - leadingZeros(n)
	shift := exp - 5 // log2(bucketsPerOctave)
	sub := int(n>>uint(shift)) - bucketsPerOctave
	idx := (exp-4)*bucketsPerOctave + sub
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketLower returns the smallest duration mapping to bucket idx,
// the inverse of bucketIndex up to bucket granularity.
func bucketLower(idx int) time.Duration {
	if idx < bucketsPerOctave {
		return time.Duration(idx)
	}
	octave := idx/bucketsPerOctave + 4
	sub := idx % bucketsPerOctave
	shift := octave - 5
	return time.Duration((uint64(bucketsPerOctave) + uint64(sub)) << uint(shift))
}

func leadingZeros(x uint64) int { return bits.LeadingZeros64(x) }

// Record adds one observation. The nil histogram is a valid no-op
// instrument (a nil Registry hands them out), so hot paths record
// unconditionally.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	idx := bucketIndex(d)
	h.mu.Lock()
	h.counts[idx]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the value at quantile q in [0,1]. Quantile(0) is the
// minimum and Quantile(1) the maximum. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := bucketLower(i)
			hi := bucketLower(i + 1)
			// Midpoint keeps the estimate unbiased within the bucket;
			// clamping keeps it inside the observed range.
			v := lo + (hi-lo)/2
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Sum returns the running sum of all observations (Prometheus' summary
// `_sum` series).
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// PaperPercentiles is the percentile set plotted on the paper's inverted
// log-scale x-axis (Figures 8–13), plus p95 for the Prometheus summary
// convention.
var PaperPercentiles = []float64{0, 0.50, 0.90, 0.95, 0.99, 0.999, 0.9999}

// Snapshot returns a point-in-time copy of the histogram's summary at the
// paper's percentile set.
func (h *Histogram) Snapshot() Summary {
	s := Summary{
		Count:     h.Count(),
		Mean:      h.Mean(),
		Sum:       h.Sum(),
		Quantiles: make(map[float64]time.Duration, len(PaperPercentiles)),
	}
	for _, q := range PaperPercentiles {
		s.Quantiles[q] = h.Quantile(q)
	}
	return s
}

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	counts := make([]uint64, len(other.counts))
	copy(counts, other.counts)
	count, sum, min, max := other.count, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.count += count
	h.sum += sum
	if count > 0 {
		if min < h.min {
			h.min = min
		}
		if max > h.max {
			h.max = max
		}
	}
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary is an immutable percentile snapshot of a histogram.
type Summary struct {
	Count     uint64
	Mean      time.Duration
	Sum       time.Duration
	Quantiles map[float64]time.Duration
}

// String renders the summary in the row format used by the experiment
// harness: `count=N mean=M p0=.. p50=.. p90=.. p99=.. p99.9=.. p99.99=..`.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "count=%d mean=%s", s.Count, round(s.Mean))
	qs := make([]float64, 0, len(s.Quantiles))
	for q := range s.Quantiles {
		qs = append(qs, q)
	}
	sort.Float64s(qs)
	for _, q := range qs {
		fmt.Fprintf(&b, " p%s=%s", trimPct(q), round(s.Quantiles[q]))
	}
	return b.String()
}

func trimPct(q float64) string {
	s := fmt.Sprintf("%v", q*100)
	return s
}

func round(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return d.Round(time.Millisecond)
	case d > time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}
