package metrics

import (
	"sync/atomic"
	"time"
)

// Meter counts events and reports rates over the elapsed wall-clock window.
// It backs the sustainable-throughput measurements of the scalability
// experiment (Figure 15).
type Meter struct {
	count atomic.Uint64
	start atomic.Int64 // unix nanos
}

// NewMeter returns a meter whose window starts now.
func NewMeter() *Meter {
	m := &Meter{}
	m.start.Store(time.Now().UnixNano())
	return m
}

// Add records n events.
func (m *Meter) Add(n uint64) { m.count.Add(n) }

// Inc records one event.
func (m *Meter) Inc() { m.count.Add(1) }

// Count returns the number of events recorded since the last Reset.
func (m *Meter) Count() uint64 { return m.count.Load() }

// Rate returns events per second since the window start.
func (m *Meter) Rate() float64 {
	elapsed := time.Since(time.Unix(0, m.start.Load()))
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count.Load()) / elapsed.Seconds()
}

// Reset zeroes the counter and restarts the window.
func (m *Meter) Reset() {
	m.count.Store(0)
	m.start.Store(time.Now().UnixNano())
}

// Stopwatch measures one interval at a time; it exists so call sites read as
// measurement code rather than raw time arithmetic.
type Stopwatch struct {
	t0 time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch { return Stopwatch{t0: time.Now()} }

// Elapsed reports the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t0) }
