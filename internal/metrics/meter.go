package metrics

import (
	"sync/atomic"
	"time"
)

// meterWindow is one measurement window: a start instant and the events
// counted since. Count and start live in one allocation so readers observe
// them together through a single pointer load — Reset swaps the whole
// window atomically instead of zeroing the count and restarting the clock
// in two separate stores (which let a concurrent Rate see a zeroed count
// against the old window, or the old count against the new window).
type meterWindow struct {
	start int64 // unix nanos
	count atomic.Uint64
}

// Meter counts events and reports rates over the elapsed wall-clock window.
// It backs the sustainable-throughput measurements of the scalability
// experiment (Figure 15).
type Meter struct {
	win atomic.Pointer[meterWindow]
}

// NewMeter returns a meter whose window starts now.
func NewMeter() *Meter {
	m := &Meter{}
	m.win.Store(&meterWindow{start: time.Now().UnixNano()})
	return m
}

// Add records n events.
func (m *Meter) Add(n uint64) { m.win.Load().count.Add(n) }

// Inc records one event.
func (m *Meter) Inc() { m.win.Load().count.Add(1) }

// Count returns the number of events recorded since the last Reset.
func (m *Meter) Count() uint64 { return m.win.Load().count.Load() }

// Rate returns events per second since the window start. The count and the
// window start are read from the same window, so a concurrent Reset can
// never pair one window's count with the other's start.
func (m *Meter) Rate() float64 {
	w := m.win.Load()
	elapsed := time.Since(time.Unix(0, w.start))
	if elapsed <= 0 {
		return 0
	}
	return float64(w.count.Load()) / elapsed.Seconds()
}

// Reset zeroes the counter and restarts the window by installing a fresh
// window in a single atomic store. Events recorded concurrently into the
// outgoing window are dropped with it — the same semantics a racing
// pre-fix Reset had, without the torn count/start pairing.
func (m *Meter) Reset() {
	m.win.Store(&meterWindow{start: time.Now().UnixNano()})
}

// Stopwatch measures one interval at a time; it exists so call sites read as
// measurement code rather than raw time arithmetic.
type Stopwatch struct {
	t0 time.Time
}

// StartStopwatch begins timing.
func StartStopwatch() Stopwatch { return Stopwatch{t0: time.Now()} }

// Elapsed reports the time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.t0) }
