package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", h.Count())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) on empty = %v, want 0", got)
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram summary stats nonzero: mean=%v min=%v max=%v", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if relErr(got, 5*time.Millisecond) > 0.05 {
			t.Errorf("Quantile(%v) = %v, want ~5ms", q, got)
		}
	}
	if h.Min() != 5*time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Errorf("min/max = %v/%v, want 5ms/5ms", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-time.Second)
	if h.Min() != 0 {
		t.Errorf("negative durations should clamp to 0, got min=%v", h.Min())
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1e6, 1e9, 1e12} {
		idx := bucketIndex(d)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %v: %d < %d", d, idx, prev)
		}
		prev = idx
	}
}

func TestBucketLowerInverse(t *testing.T) {
	for idx := 0; idx < numBuckets-1; idx++ {
		lo := bucketLower(idx)
		if got := bucketIndex(lo); got != idx {
			t.Fatalf("bucketIndex(bucketLower(%d)) = %d", idx, got)
		}
		hi := bucketLower(idx + 1)
		if got := bucketIndex(hi - 1); got != idx {
			t.Fatalf("upper edge of bucket %d maps to %d", idx, got)
		}
	}
}

// Property: the histogram quantile is always within bucket resolution
// (~3.2%) of the exact quantile of the recorded sample.
func TestHistogramQuantileAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(800)
		h := NewHistogram()
		samples := make([]time.Duration, n)
		for i := range samples {
			// Log-uniform over [1µs, 1s] — the range our experiments live in.
			exp := rng.Float64()*6 + 3 // 10^3 .. 10^9 ns
			samples[i] = time.Duration(math.Pow(10, exp))
			h.Record(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			rank := int(math.Ceil(q*float64(n))) - 1
			exact := samples[rank]
			got := h.Quantile(q)
			if relErr(got, exact) > 0.04 {
				t.Logf("seed=%d q=%v got=%v exact=%v", seed, q, got, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: min ≤ every reported quantile ≤ max, and quantiles are
// monotonically non-decreasing in q.
func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, r := range raw {
			h.Record(time.Duration(r))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
		b.Record(time.Duration(i+100) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if relErr(a.Quantile(1), 199*time.Millisecond) > 0.05 {
		t.Errorf("merged max quantile = %v, want ~199ms", a.Quantile(1))
	}
	if a.Min() != 0 {
		t.Errorf("merged min = %v, want 0", a.Min())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Millisecond)
	a.Merge(b) // merging an empty histogram must not disturb min/max
	if a.Count() != 1 || a.Min() != time.Millisecond {
		t.Errorf("after merging empty: count=%d min=%v", a.Count(), a.Min())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Errorf("after reset: count=%d max=%v", h.Count(), h.Max())
	}
	h.Record(2 * time.Millisecond)
	if relErr(h.Quantile(0.5), 2*time.Millisecond) > 0.05 {
		t.Errorf("post-reset quantile = %v", h.Quantile(0.5))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(i%50) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Fatalf("concurrent count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestSnapshotContainsPaperPercentiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	for _, q := range PaperPercentiles {
		if _, ok := s.Quantiles[q]; !ok {
			t.Errorf("snapshot missing percentile %v", q)
		}
	}
	// 99.99th of 10k uniform 1..10000µs is ~10ms.
	if relErr(s.Quantiles[0.9999], 10*time.Millisecond) > 0.05 {
		t.Errorf("p99.99 = %v, want ~10ms", s.Quantiles[0.9999])
	}
	if s.String() == "" {
		t.Error("summary String() is empty")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(10)
	m.Inc()
	if m.Count() != 11 {
		t.Fatalf("Count = %d, want 11", m.Count())
	}
	if m.Rate() <= 0 {
		t.Errorf("Rate = %v, want > 0", m.Rate())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Errorf("Count after reset = %d", m.Count())
	}
}

func TestStopwatch(t *testing.T) {
	sw := StartStopwatch()
	time.Sleep(time.Millisecond)
	if sw.Elapsed() < time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 1ms", sw.Elapsed())
	}
}

func relErr(got, want time.Duration) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got-want)) / float64(want)
}
