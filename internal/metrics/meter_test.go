package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestMeterCountAndRate(t *testing.T) {
	m := NewMeter()
	m.Add(10)
	m.Inc()
	if got := m.Count(); got != 11 {
		t.Fatalf("Count = %d, want 11", got)
	}
	time.Sleep(5 * time.Millisecond)
	if r := m.Rate(); r <= 0 {
		t.Fatalf("Rate = %v, want > 0", r)
	}
	m.Reset()
	if got := m.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}

// TestMeterResetRace is the regression test for the torn Reset window: when
// the count and the window start were reset in two separate atomic stores, a
// concurrent Rate could pair one window's count with the other window's
// start — most dangerously an accumulated count against a nanoseconds-old
// start, reporting a physically impossible rate. With the single-pointer
// window swap, Rate always divides a window's count by that same window's
// age, so the observed rate is bounded by the writers' instantaneous add
// throughput.
//
// The bound: each Add contributes batch events, writers manage far fewer
// than 10^9 Adds/sec, so a consistent rate stays below batch*10^9 ≈ 10^15
// events/sec. A torn pairing divides a multi-millisecond window's
// accumulation by a ~100ns elapsed and lands orders of magnitude above the
// ceiling.
func TestMeterResetRace(t *testing.T) {
	const (
		batch   = 1 << 20
		ceiling = 1e16
	)
	m := NewMeter()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.Add(batch)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Millisecond) // let the window accumulate
				m.Reset()
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200_000; i++ {
				rate := m.Rate()
				if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 || rate > ceiling {
					t.Errorf("implausible Rate observed: %g events/s", rate)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
