package obshttp

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"squery/internal/metrics"
)

// statusz: a one-page plain-text health summary of a running engine —
// event-time lag per operator instance, backpressure per stage, the
// slowest recent queries, and sparklines over the registry's metric
// history. The same renderer backs GET /statusz and the REPL's \health
// meta-command, so both surfaces always agree; it reads only the metrics
// registry, never the engine, keeping the obs plane cycle-free.

// pressureWarn is the pressure score (permille) at and above which a
// stage is flagged in the backpressure section.
const pressureWarn = 500

// statuszIdleAfter mirrors the sys.watermarks idle threshold: an instance
// whose last record is older than this reads as idle.
const statuszIdleAfter = time.Second

// WriteStatus renders the health summary. A nil registry (metrics
// disabled) renders a one-line notice.
func WriteStatus(w io.Writer, reg *metrics.Registry) {
	if reg == nil {
		fmt.Fprintln(w, "statusz: metrics disabled")
		return
	}
	now := time.Now()
	vals := reg.Values("operator")
	writeWatermarkStatus(w, vals, now)
	writeBackpressureStatus(w, vals)
	writeSlowQueryStatus(w, reg)
	writeHistoryStatus(w, reg)
}

// opRow is one operator instance's health snapshot for sorting.
type opRow struct {
	id string
	v  map[string]int64
}

// opRows collects the operator instances carrying marker, sorted by the
// named metric, highest first (then by id for stability).
func opRows(vals map[string]map[string]int64, marker, sortBy string) []opRow {
	rows := make([]opRow, 0, len(vals))
	for id, v := range vals {
		if _, ok := v[marker]; ok {
			rows = append(rows, opRow{id, v})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if a, b := rows[i].v[sortBy], rows[j].v[sortBy]; a != b {
			return a > b
		}
		return rows[i].id < rows[j].id
	})
	return rows
}

const statuszTop = 16

func writeWatermarkStatus(w io.Writer, vals map[string]map[string]int64, now time.Time) {
	rows := opRows(vals, "watermark_us", "watermark_lag_us")
	fmt.Fprintf(w, "== watermarks (%d instances, worst lag first) ==\n", len(rows))
	if len(rows) == 0 {
		fmt.Fprintln(w, "  no operator instances")
		return
	}
	n := len(rows)
	if n > statuszTop {
		n = statuszTop
	}
	for _, r := range rows[:n] {
		lag := time.Duration(r.v["watermark_lag_us"]) * time.Microsecond
		state := ""
		last := r.v["last_record_us"]
		if last == 0 {
			state = " idle"
		} else if age := now.Sub(time.UnixMicro(last)); age >= statuszIdleAfter {
			state = fmt.Sprintf(" idle (last record %s ago)", age.Round(time.Millisecond))
		}
		wm := "none"
		if us := r.v["watermark_us"]; us > 0 {
			wm = time.UnixMicro(us).Format("15:04:05.000")
		}
		fmt.Fprintf(w, "  %-24s lag=%-12s watermark=%s%s\n", r.id, lag.Round(time.Millisecond), wm, state)
	}
	if len(rows) > n {
		fmt.Fprintf(w, "  ... %d more\n", len(rows)-n)
	}
}

func writeBackpressureStatus(w io.Writer, vals map[string]map[string]int64) {
	rows := opRows(vals, "pressure_permille", "pressure_permille")
	pressured := 0
	for _, r := range rows {
		if r.v["pressure_permille"] >= pressureWarn {
			pressured++
		}
	}
	fmt.Fprintf(w, "\n== backpressure (%d instances, %d pressured) ==\n", len(rows), pressured)
	if len(rows) == 0 {
		fmt.Fprintln(w, "  no operator instances")
		return
	}
	n := len(rows)
	if n > statuszTop {
		n = statuszTop
	}
	for _, r := range rows[:n] {
		mark := ""
		if r.v["pressure_permille"] >= pressureWarn {
			mark = "  <-- PRESSURED"
		}
		fmt.Fprintf(w, "  %-24s pressure=%4d‰ inbox=%d/%d blocked=%d sends (%s)%s\n",
			r.id, r.v["pressure_permille"], r.v["inbox_depth"], r.v["inbox_capacity"],
			r.v["blocked_sends"],
			(time.Duration(r.v["blocked_send_ns"]) * time.Nanosecond).Round(time.Millisecond),
			mark)
	}
	if len(rows) > n {
		fmt.Fprintf(w, "  ... %d more\n", len(rows)-n)
	}
}

func writeSlowQueryStatus(w io.Writer, reg *metrics.Registry) {
	evs := reg.Log("slow_queries", 0).Events()
	sort.Slice(evs, func(i, j int) bool {
		wi, _ := evs[i].Fields["wallUs"].(int64)
		wj, _ := evs[j].Fields["wallUs"].(int64)
		if wi != wj {
			return wi > wj
		}
		return evs[i].Seq > evs[j].Seq
	})
	fmt.Fprintf(w, "\n== slow queries (%d retained, slowest first) ==\n", len(evs))
	if len(evs) == 0 {
		fmt.Fprintln(w, "  none")
		return
	}
	n := len(evs)
	if n > 10 {
		n = 10
	}
	for _, ev := range evs[:n] {
		wall, _ := ev.Fields["wallUs"].(int64)
		scanned, _ := ev.Fields["rowsScanned"].(int64)
		bytes, _ := ev.Fields["bytesShipped"].(int64)
		peak, _ := ev.Fields["peakMemBytes"].(int64)
		stages, _ := ev.Fields["stages"].(string)
		q, _ := ev.Fields["query"].(string)
		if len(q) > 60 {
			q = q[:57] + "..."
		}
		fmt.Fprintf(w, "  %-10s rows=%-8d bytes=%-8d peakMem=%-8d %s\n    %s\n",
			time.Duration(wall)*time.Microsecond, scanned, bytes, peak, q, stages)
	}
}

// sparkChars are the eight levels of a one-line sparkline.
var sparkChars = []rune("▁▂▃▄▅▆▇█")

// sparkline scales vals into ▁..█; an empty or all-zero series renders
// flat.
func sparkline(vals []float64) string {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkChars)-1))
		}
		b.WriteRune(sparkChars[i])
	}
	return b.String()
}

// counterRateSeries sums the counters matching (subsystem, metric) in each
// history snapshot and returns the per-second rate between consecutive
// snapshots.
func counterRateSeries(snaps []metrics.HistorySnapshot, subsystem, metric string) []float64 {
	sums := make([]int64, len(snaps))
	for i, s := range snaps {
		for _, p := range s.Points {
			if p.Kind == "counter" && p.Key.Subsystem == subsystem && p.Key.Metric == metric {
				sums[i] += p.Value
			}
		}
	}
	out := make([]float64, 0, len(snaps))
	for i := 1; i < len(snaps); i++ {
		out = append(out, metrics.Rate(sums[i-1], sums[i], snaps[i-1].At, snaps[i].At))
	}
	return out
}

// gaugeMaxSeries tracks the per-snapshot maximum of the gauges matching
// (subsystem, metric).
func gaugeMaxSeries(snaps []metrics.HistorySnapshot, subsystem, metric string) []float64 {
	out := make([]float64, len(snaps))
	for i, s := range snaps {
		for _, p := range s.Points {
			if p.Kind == "gauge" && p.Key.Subsystem == subsystem && p.Key.Metric == metric {
				if v := float64(p.Value); v > out[i] {
					out[i] = v
				}
			}
		}
	}
	return out
}

func writeHistoryStatus(w io.Writer, reg *metrics.Registry) {
	snaps := reg.History()
	fmt.Fprintf(w, "\n== history (%d snapshots", len(snaps))
	if len(snaps) >= 2 {
		fmt.Fprintf(w, ", %s..%s",
			snaps[0].At.Format("15:04:05"), snaps[len(snaps)-1].At.Format("15:04:05"))
	}
	fmt.Fprintln(w, ") ==")
	if len(snaps) < 2 {
		fmt.Fprintln(w, "  not enough history yet (is retention on?)")
		return
	}
	line := func(label, spark, last string) {
		fmt.Fprintf(w, "  %-14s %s %s\n", label, spark, last)
	}
	if s := counterRateSeries(snaps, "operator", "records_in"); len(s) > 0 {
		line("ingest rate", sparkline(s), fmtRate(s[len(s)-1])+"/s")
	}
	if s := counterRateSeries(snaps, "sql", "queries"); len(s) > 0 {
		line("query rate", sparkline(s), fmtRate(s[len(s)-1])+"/s")
	}
	if s := gaugeMaxSeries(snaps, "operator", "watermark_lag_us"); len(s) > 0 {
		last := time.Duration(s[len(s)-1]) * time.Microsecond
		line("max lag", sparkline(s), last.Round(time.Millisecond).String())
	}
	if s := gaugeMaxSeries(snaps, "operator", "pressure_permille"); len(s) > 0 {
		line("max pressure", sparkline(s), strconv.FormatFloat(s[len(s)-1], 'f', 0, 64)+"‰")
	}
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 1, 64) + "M"
	case v >= 1e3:
		return strconv.FormatFloat(v/1e3, 'f', 1, 64) + "k"
	default:
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
}
