package obshttp

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"squery/internal/metrics"
	"squery/internal/trace"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestMetricsEndpointServesValidPrometheus(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("checkpoint", "job", "commits").Add(7)
	reg.Histogram("sql", "q", "latency").Record(3 * time.Millisecond)
	h := Handler(Options{Metrics: reg})

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type %q", ct)
	}
	body := rec.Body.String()
	if err := metrics.ValidatePrometheusText(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	if !strings.Contains(body, `squery_checkpoint_commits_total{id="job"} 7`) {
		t.Fatalf("missing counter:\n%s", body)
	}
}

func TestMetricsEndpointNilRegistry(t *testing.T) {
	code, body := get(t, Handler(Options{}), "/metrics")
	if code != http.StatusOK || body != "" {
		t.Fatalf("nil registry: status %d body %q", code, body)
	}
}

// emitTrace records a root span plus one child with a fixed duration.
func emitTrace(tr *trace.Tracer, name, kind string, ssid int64, dur time.Duration, failed bool) uint64 {
	root := tr.NewID()
	start := time.Now().Add(-dur)
	tr.Emit(trace.SpanData{
		TraceID: root, SpanID: root, Name: name, Kind: kind,
		SSID: ssid, Start: start, Dur: dur, Failed: failed, Instance: -1,
	})
	tr.Emit(trace.SpanData{
		TraceID: root, SpanID: tr.NewID(), ParentID: root, Name: name + "_child",
		Kind: kind, SSID: ssid, Start: start, Dur: dur / 2, Instance: 0, Vertex: "v",
	})
	return root
}

func TestTracezSlowestFirstAndFilters(t *testing.T) {
	tr := trace.New(trace.Config{Capacity: 128})
	fast := emitTrace(tr, "checkpoint", trace.KindCheckpoint, 3, 10*time.Millisecond, false)
	slow := emitTrace(tr, "query", trace.KindQuery, 0, 50*time.Millisecond, true)
	h := Handler(Options{Tracer: tr})

	code, body := get(t, h, "/tracez")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	slowLine := fmt.Sprintf("trace %d query", slow)
	fastLine := fmt.Sprintf("trace %d checkpoint", fast)
	si, fi := strings.Index(body, slowLine), strings.Index(body, fastLine)
	if si < 0 || fi < 0 || si > fi {
		t.Fatalf("slowest-first violated (slow@%d fast@%d):\n%s", si, fi, body)
	}
	if !strings.Contains(body, "FAILED") {
		t.Fatalf("failed trace not flagged:\n%s", body)
	}
	if !strings.Contains(body, "ssid=3") {
		t.Fatalf("checkpoint ssid missing:\n%s", body)
	}

	_, filtered := get(t, h, "/tracez?kind=checkpoint")
	if strings.Contains(filtered, slowLine) || !strings.Contains(filtered, fastLine) {
		t.Fatalf("kind filter broken:\n%s", filtered)
	}

	_, limited := get(t, h, "/tracez?limit=1")
	if strings.Contains(limited, fastLine) || !strings.Contains(limited, slowLine) {
		t.Fatalf("limit must keep only the slowest trace:\n%s", limited)
	}
}

func TestTracezNilTracer(t *testing.T) {
	code, body := get(t, Handler(Options{}), "/tracez")
	if code != http.StatusOK || !strings.Contains(body, "0 traces") {
		t.Fatalf("nil tracer: status %d body %q", code, body)
	}
}

func TestProbesFlip(t *testing.T) {
	healthy := true
	h := Handler(Options{
		Health: func() error {
			if !healthy {
				return errors.New("job \"x\" is not running")
			}
			return nil
		},
		Ready: func() error { return errors.New("no committed snapshot yet") },
	})
	if code, body := get(t, h, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy probe: %d %q", code, body)
	}
	healthy = false
	if code, body := get(t, h, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not running") {
		t.Fatalf("unhealthy probe: %d %q", code, body)
	}
	if code, body := get(t, h, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "snapshot") {
		t.Fatalf("readyz: %d %q", code, body)
	}
	// Nil probes report healthy.
	if code, _ := get(t, Handler(Options{}), "/readyz"); code != http.StatusOK {
		t.Fatalf("nil probe status %d", code)
	}
}

func TestPprofWired(t *testing.T) {
	code, body := get(t, Handler(Options{}), "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
	if code, _ := get(t, Handler(Options{}), "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", code)
	}
}

func TestServeOverTCP(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge("operator", "map/0", "node").Set(1)
	srv, addr, err := Serve("127.0.0.1:0", Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "squery_operator_node") {
		t.Fatalf("serve: %d %s", resp.StatusCode, body)
	}
}
