// Command promcheck validates a scraped /metrics body against the strict
// Prometheus text-exposition validator used by the metrics tests. CI's
// obs-smoke job pipes the live endpoint through it:
//
//	curl -fsS http://127.0.0.1:8080/metrics > metrics.prom
//	go run ./internal/obshttp/promcheck metrics.prom
//
// It exits non-zero (printing the first violation) on malformed output.
package main

import (
	"fmt"
	"io"
	"os"

	"squery/internal/metrics"
)

func main() {
	var (
		body []byte
		err  error
	)
	switch {
	case len(os.Args) == 2 && os.Args[1] != "-":
		body, err = os.ReadFile(os.Args[1])
	default:
		body, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(2)
	}
	if err := metrics.ValidatePrometheusText(string(body)); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: invalid exposition:", err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d bytes)\n", len(body))
}
