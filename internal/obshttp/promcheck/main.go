// Command promcheck validates a scraped /metrics body against the strict
// Prometheus text-exposition validator used by the metrics tests. CI's
// obs-smoke job pipes the live endpoint through it:
//
//	curl -fsS http://127.0.0.1:8080/metrics > metrics.prom
//	go run ./internal/obshttp/promcheck -require squery_operator_pressure_permille metrics.prom
//
// It exits non-zero (printing the first violation) on malformed output.
// -require takes a comma-separated list of metric families that must be
// present in the exposition (each with a # TYPE line), so the smoke jobs
// catch a family silently disappearing, not just syntax rot.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"squery/internal/metrics"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	flag.Parse()
	var (
		body []byte
		err  error
	)
	switch {
	case flag.NArg() == 1 && flag.Arg(0) != "-":
		body, err = os.ReadFile(flag.Arg(0))
	default:
		body, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(2)
	}
	if err := metrics.ValidatePrometheusText(string(body)); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: invalid exposition:", err)
		os.Exit(1)
	}
	if *require != "" {
		types := map[string]bool{}
		for _, line := range strings.Split(string(body), "\n") {
			if fields := strings.Fields(line); len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" {
				types[fields[2]] = true
			}
		}
		var missing []string
		for _, fam := range strings.Split(*require, ",") {
			if fam = strings.TrimSpace(fam); fam != "" && !types[fam] {
				missing = append(missing, fam)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "promcheck: missing required families: %s\n", strings.Join(missing, ", "))
			os.Exit(1)
		}
	}
	fmt.Printf("promcheck: ok (%d bytes)\n", len(body))
}
