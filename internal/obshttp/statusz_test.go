package obshttp

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"squery/internal/metrics"
)

// healthRegistry builds a registry shaped like a running engine's: two
// operator instances (one pressured), a slow query, and enough history
// for sparklines.
func healthRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	now := time.Now()
	for _, id := range []string{"map/0", "map/1"} {
		reg.Gauge("operator", id, "watermark_us").Set(now.Add(-2 * time.Second).UnixMicro())
		reg.Gauge("operator", id, "last_record_us").Set(now.UnixMicro())
		reg.Gauge("operator", id, "watermark_lag_us").Set(2_000_000)
		reg.Gauge("operator", id, "inbox_capacity").Set(8)
	}
	reg.Gauge("operator", "map/0", "pressure_permille").Set(1000)
	reg.Gauge("operator", "map/0", "inbox_depth").Set(8)
	reg.Gauge("operator", "map/1", "pressure_permille").Set(10)
	reg.Gauge("operator", "map/1", "inbox_depth").Set(0)
	reg.Counter("operator", "map/0", "blocked_sends").Add(3)
	reg.Log("slow_queries", 8).Append(map[string]any{
		"query": "SELECT * FROM orders", "wallUs": int64(150_000),
		"rowsScanned": int64(40), "bytesShipped": int64(2048),
		"peakMemBytes": int64(4096), "stages": "scan=1ms project=80µs",
	})
	in := reg.Counter("operator", "map/0", "records_in")
	reg.Capture(now.Add(-2 * time.Second))
	in.Add(500)
	reg.Capture(now.Add(-time.Second))
	in.Add(1500)
	reg.Capture(now)
	return reg
}

func TestWriteStatusRendersAllSections(t *testing.T) {
	var b strings.Builder
	WriteStatus(&b, healthRegistry())
	out := b.String()
	for _, want := range []string{
		"== watermarks", "map/0", "lag=2s",
		"== backpressure", "1 pressured", "<-- PRESSURED", "inbox=8/8",
		"== slow queries", "SELECT * FROM orders", "scan=1ms",
		"== history (3 snapshots", "ingest rate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("statusz missing %q:\n%s", want, out)
		}
	}
	// The ingest sparkline must show a rising rate (500/s then 1500/s).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "ingest rate") {
			if !strings.Contains(line, "▃█") {
				t.Fatalf("ingest sparkline not rising: %q", line)
			}
		}
	}
}

func TestWriteStatusNilRegistry(t *testing.T) {
	var b strings.Builder
	WriteStatus(&b, nil)
	if !strings.Contains(b.String(), "metrics disabled") {
		t.Fatalf("nil-registry statusz = %q", b.String())
	}
}

func TestStatuszEndpoint(t *testing.T) {
	h := Handler(Options{Metrics: healthRegistry()})
	code, body := get(t, h, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"== watermarks", "== backpressure", "== slow queries", "== history"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/statusz missing %q:\n%s", want, body)
		}
	}
}
