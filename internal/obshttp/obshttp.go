// Package obshttp is the engine's HTTP observability plane: a single
// handler exposing Prometheus metrics, a slowest-first trace inspector,
// a one-page health summary (/statusz: watermark lag, backpressure,
// slowest queries, metric-history sparklines), liveness/readiness probes
// and the Go pprof profiles. The package
// depends only on the metrics and trace instrument types — the engine
// (or any harness) passes its instruments in via Options, so cmd
// binaries can serve the plane without an import cycle through the root
// package.
//
//	srv, addr, _ := obshttp.Serve("127.0.0.1:0", obshttp.Options{
//		Metrics: eng.Metrics(),
//		Tracer:  eng.Tracer(),
//		Health:  eng.Health,
//		Ready:   eng.Ready,
//	})
//	defer srv.Close()
//	// curl http://$addr/metrics | promtool check metrics
//	// curl http://$addr/tracez?limit=10
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"squery/internal/metrics"
	"squery/internal/sql"
	"squery/internal/trace"
)

// Options wires the plane to a running engine. Every field is optional:
// a nil Metrics serves an empty exposition, a nil Tracer an empty trace
// list, and a nil Health/Ready probe reports healthy.
type Options struct {
	// Metrics backs GET /metrics (Prometheus text exposition format).
	Metrics *metrics.Registry
	// Tracer backs GET /tracez (completed traces, slowest first).
	Tracer *trace.Tracer
	// Health backs GET /healthz: nil → 200, error → 503 with the message.
	Health func() error
	// Ready backs GET /readyz the same way.
	Ready func() error
	// Subscribe backs GET /subscribe?q=<standing query> as a Server-Sent
	// Events stream: it starts the standing query and returns its output
	// columns, ordered event channel, and a cancel function the handler
	// calls when the client disconnects. Nil serves 404 (subscriptions
	// disabled). The engine's adapter is Engine.HTTPSubscribe.
	Subscribe func(query string) (cols []string, events <-chan sql.SubEvent, cancel func(), err error)
}

// sseDelta and sseEvent are the JSON wire forms of one standing-query
// frame on the /subscribe stream.
type sseDelta struct {
	Key    string `json:"key"`
	Vals   []any  `json:"vals,omitempty"`
	Delete bool   `json:"delete,omitempty"`
}

type sseEvent struct {
	Deltas    []sseDelta `json:"deltas,omitempty"`
	Watermark uint64     `json:"watermark"`
	Snapshot  bool       `json:"snapshot,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// serveSubscribe streams one standing query as SSE: a "columns" event,
// then one "snapshot" or "delta" event per frame, a terminal "error"
// event if the standing query fails, until the client disconnects or the
// subscription ends.
func serveSubscribe(w http.ResponseWriter, r *http.Request, subscribe func(string) ([]string, <-chan sql.SubEvent, func(), error)) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter (the standing query)", http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	cols, events, cancel, err := subscribe(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	emit := func(kind string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		_, werr := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data)
		fl.Flush()
		return werr == nil
	}
	if !emit("columns", cols) {
		return
	}
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			out := sseEvent{Watermark: ev.Watermark, Snapshot: ev.Snapshot}
			for _, d := range ev.Deltas {
				out.Deltas = append(out.Deltas, sseDelta{Key: d.Key, Vals: d.Vals, Delete: d.Delete})
			}
			kind := "delta"
			if ev.Snapshot {
				kind = "snapshot"
			}
			if ev.Err != nil {
				kind, out.Error = "error", ev.Err.Error()
			}
			if !emit(kind, out) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Handler returns the observability mux: /metrics, /statusz, /tracez,
// /healthz, /readyz and /debug/pprof/*.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, o.Metrics.PrometheusText())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteStatus(w, o.Metrics)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		limit := 50
		if s := r.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				limit = n
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTracez(w, o.Tracer, limit, r.URL.Query().Get("kind"))
	})
	probe := func(check func() error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if check != nil {
				if err := check(); err != nil {
					http.Error(w, err.Error(), http.StatusServiceUnavailable)
					return
				}
			}
			fmt.Fprintln(w, "ok")
		}
	}
	mux.HandleFunc("/subscribe", func(w http.ResponseWriter, r *http.Request) {
		if o.Subscribe == nil {
			http.Error(w, "subscriptions not enabled", http.StatusNotFound)
			return
		}
		serveSubscribe(w, r, o.Subscribe)
	})
	mux.HandleFunc("/healthz", probe(o.Health))
	mux.HandleFunc("/readyz", probe(o.Ready))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (use port 0 for an ephemeral port), serves Handler(o)
// on it in a background goroutine, and returns the server plus the bound
// address. Close the returned server to stop.
func Serve(addr string, o Options) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(o)}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return srv, ln.Addr(), nil
}

// traceView is one assembled trace: its retained spans and the envelope
// [start, end) they cover.
type traceView struct {
	id     uint64
	root   *trace.SpanData
	first  trace.SpanData
	spans  []trace.SpanData
	start  time.Time
	end    time.Time
	failed bool
}

func (t *traceView) dur() time.Duration { return t.end.Sub(t.start) }

func (t *traceView) head() trace.SpanData {
	if t.root != nil {
		return *t.root
	}
	return t.first
}

// writeTracez renders up to limit traces, slowest first, each with its
// spans indented beneath it ordered by start time. kind, when non-empty,
// keeps only traces whose head span has that kind.
func writeTracez(w http.ResponseWriter, tr *trace.Tracer, limit int, kind string) {
	byTrace := map[uint64]*traceView{}
	for _, d := range tr.Spans() {
		v := byTrace[d.TraceID]
		if v == nil {
			v = &traceView{id: d.TraceID, first: d, start: d.Start, end: d.Start.Add(d.Dur)}
			byTrace[d.TraceID] = v
		}
		v.spans = append(v.spans, d)
		if d.Start.Before(v.start) {
			v.start = d.Start
			v.first = d
		}
		if end := d.Start.Add(d.Dur); end.After(v.end) {
			v.end = end
		}
		if d.Failed {
			v.failed = true
		}
		if d.ParentID == 0 {
			root := d
			v.root = &root
		}
	}
	views := make([]*traceView, 0, len(byTrace))
	for _, v := range byTrace {
		if kind != "" && v.head().Kind != kind {
			continue
		}
		views = append(views, v)
	}
	sort.Slice(views, func(i, j int) bool {
		if views[i].dur() != views[j].dur() {
			return views[i].dur() > views[j].dur()
		}
		return views[i].id < views[j].id // stable tiebreak
	})
	fmt.Fprintf(w, "tracez: %d traces retained", len(views))
	if kind != "" {
		fmt.Fprintf(w, " (kind=%s)", kind)
	}
	fmt.Fprintln(w, ", slowest first")
	if len(views) > limit {
		views = views[:limit]
	}
	for _, v := range views {
		head := v.head()
		status := "ok"
		if v.failed {
			status = "FAILED"
		}
		fmt.Fprintf(w, "\ntrace %d %s kind=%s spans=%d dur=%s %s",
			v.id, head.Name, head.Kind, len(v.spans), v.dur(), status)
		if head.SSID != 0 {
			fmt.Fprintf(w, " ssid=%d", head.SSID)
		}
		fmt.Fprintln(w)
		sort.Slice(v.spans, func(i, j int) bool {
			if !v.spans[i].Start.Equal(v.spans[j].Start) {
				return v.spans[i].Start.Before(v.spans[j].Start)
			}
			return v.spans[i].SpanID < v.spans[j].SpanID
		})
		for _, d := range v.spans {
			loc := d.Vertex
			if d.Instance >= 0 {
				loc = fmt.Sprintf("%s/%d", d.Vertex, d.Instance)
			}
			fmt.Fprintf(w, "  span %d parent=%d %-16s %-12s dur=%s", d.SpanID, d.ParentID, d.Name, loc, d.Dur)
			if d.QueueWait > 0 {
				fmt.Fprintf(w, " queue=%s", d.QueueWait)
			}
			if d.SSID != 0 {
				fmt.Fprintf(w, " ssid=%d", d.SSID)
			}
			if d.Failed {
				fmt.Fprint(w, " FAILED")
			}
			if d.Note != "" {
				fmt.Fprintf(w, " (%s)", d.Note)
			}
			fmt.Fprintln(w)
		}
	}
}
