#!/usr/bin/env bash
# obs-smoke: boot the real squery binary with -serve-obs on an ephemeral
# port, then exercise the whole observability plane from the outside:
# /healthz and /readyz converge to 200, /metrics scrapes as valid
# Prometheus text exposition (checked by the strict promcheck validator),
# /tracez renders traces, and pprof answers. Run via `make obs-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)/squery
log=$(mktemp)
go build -o "$bin" ./cmd/squery

# Keep stdin open (the binary serves a SQL prompt) for the smoke window.
(sleep 60 | "$bin" -orders 2000 -interval 100ms -serve-obs 127.0.0.1:0 >"$log" 2>&1) &
pid=$!
cleanup() { kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; }
trap cleanup EXIT

# The binary prints "observability plane on http://127.0.0.1:PORT".
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's#^observability plane on http://##p' "$log" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "obs-smoke: no serve-obs address in:"; cat "$log"; exit 1; }
echo "obs-smoke: plane at $addr"

healthz=$(curl -fsS "http://$addr/healthz")
grep -q ok <<<"$healthz"
echo "obs-smoke: healthz ok"

# readyz serves 503 until the first snapshot commits, then 200.
ready=1
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then ready=0; break; fi
  sleep 0.1
done
[ "$ready" = 0 ] || { echo "obs-smoke: readyz never became ready"; exit 1; }
echo "obs-smoke: readyz ok"

metrics=$(mktemp)
curl -fsS "http://$addr/metrics" >"$metrics"
go run ./internal/obshttp/promcheck \
  -require squery_operator_watermark_lag_us,squery_operator_pressure_permille \
  "$metrics"
grep -q '^# TYPE squery_checkpoint_commits_total counter' "$metrics"
grep -q 'squery_operator_records_in_total' "$metrics"
# Health-plane families ship with HELP text for external alerting.
grep -q '^# HELP squery_operator_watermark_lag_us ' "$metrics"
grep -q '^# TYPE squery_operator_pressure_permille gauge' "$metrics"
echo "obs-smoke: metrics scrape valid"

tracez=$(curl -fsS "http://$addr/tracez?limit=5")
grep -q 'traces retained' <<<"$tracez"
tracez=$(curl -fsS "http://$addr/tracez?kind=checkpoint")
grep -q 'kind=checkpoint' <<<"$tracez"
echo "obs-smoke: tracez ok"

curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null
echo "obs-smoke: pprof ok"
echo "obs-smoke: PASS"
