#!/usr/bin/env bash
# health-smoke: boot the real squery binary with -serve-obs and an
# injected stage stall, then exercise the pipeline health plane from the
# outside: /statusz renders every section with live history, /metrics
# carries the lag/pressure families (with HELP text, enforced by
# promcheck -require), and the new sys tables answer over the SQL prompt —
# sys.watermarks, sys.backpressure, sys.history, sys.slow_queries — with
# the stalled vertex attributed. Run via `make health-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)/squery
log=$(mktemp)
go build -o "$bin" ./cmd/squery

# The SQL prompt is the test driver: after a warm-up the script queries
# each health table, renders \health, then quits. The stage stall keeps
# riderlocation pressured so attribution is visible, not vacuous.
(
  {
    sleep 6
    printf 'SELECT vertex, lagUs FROM sys.watermarks\n'
    printf 'SELECT vertex, pressurePermille, blockedSends FROM sys.backpressure\n'
    printf 'SELECT COUNT(*) FROM sys.history\n'
    printf 'SELECT COUNT(*) FROM sys.slow_queries\n'
    printf '\\health\n'
    sleep 1
    printf '\\quit\n'
  } | "$bin" -orders 2000 -interval 200ms -serve-obs 127.0.0.1:0 \
      -chaos-stall riderlocation -chaos-stall-delay 50ms >"$log" 2>&1
) &
pid=$!
cleanup() { kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; }
trap cleanup EXIT

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's#^observability plane on http://##p' "$log" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "health-smoke: no serve-obs address in:"; cat "$log"; exit 1; }
echo "health-smoke: plane at $addr"

# Give the job a moment to ingest, stall, and retain history snapshots.
sleep 3

statusz=$(curl -fsS "http://$addr/statusz")
for section in '== watermarks' '== backpressure' '== slow queries' '== history'; do
  grep -qF "$section" <<<"$statusz" || {
    echo "health-smoke: /statusz missing $section:"; echo "$statusz"; exit 1; }
done
grep -qE '== history \(([2-9]|[1-9][0-9]+) snapshots' <<<"$statusz" || {
  echo "health-smoke: /statusz has <2 history snapshots:"; echo "$statusz"; exit 1; }
echo "health-smoke: statusz ok"

metrics=$(mktemp)
curl -fsS "http://$addr/metrics" >"$metrics"
go run ./internal/obshttp/promcheck \
  -require squery_operator_watermark_lag_us,squery_operator_pressure_permille,squery_operator_inbox_depth,squery_operator_blocked_sends_total,squery_sql_slow_queries_total \
  "$metrics"
grep -q '^# HELP squery_operator_watermark_lag_us ' "$metrics"
grep -q '^# HELP squery_operator_pressure_permille ' "$metrics"
echo "health-smoke: metrics families ok"

# Let the prompt session finish, then check the SQL-side answers.
wait "$pid"
trap - EXIT
if grep -q 'error:' "$log"; then
  echo "health-smoke: a health query errored:"; cat "$log"; exit 1
fi
# The stalled vertex appears in both attribution tables' output.
n=$(grep -c 'riderlocation' "$log") || true
[ "$n" -ge 2 ] || { echo "health-smoke: stalled vertex not attributed:"; cat "$log"; exit 1; }
# \health rendered the same sections inside the REPL.
grep -qF '== watermarks' "$log" || { echo "health-smoke: \\health missing:"; cat "$log"; exit 1; }
grep -qF '== backpressure' "$log" || { echo "health-smoke: \\health missing:"; cat "$log"; exit 1; }
echo "health-smoke: sys tables + \\health ok"
echo "health-smoke: PASS"
