#!/usr/bin/env bash
# subscribe-smoke: boot the real squery binary with -serve-obs and attach
# a standing query two ways — the REPL's \watch and the SSE /subscribe
# endpoint — then verify the push plane from the outside: snapshot and
# delta frames arrive on both surfaces, sys.subscriptions and
# sys.arrangements account for the live subscriber over the SQL prompt,
# and /metrics carries the squery_sub_* families with HELP text
# (promcheck -require). Run via `make subscribe-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=$(mktemp -d)/squery
log=$(mktemp)
sse=$(mktemp)
go build -o "$bin" ./cmd/squery

# The SQL prompt is the test driver: watch a grouped standing query for a
# few seconds (Enter stops it), then — with the SSE subscriber below
# still attached — query the subscription and arrangement tables.
(
  {
    sleep 6
    printf '\\watch SELECT COUNT(*), orderState FROM orderstate GROUP BY orderState\n'
    sleep 3
    printf '\n'
    sleep 4
    printf 'SELECT subscription, tables, delivered, lag FROM sys.subscriptions\n'
    printf 'SELECT refs, rows FROM sys.arrangements\n'
    sleep 1
    printf '\\quit\n'
  } | "$bin" -orders 4000 -interval 200ms -serve-obs 127.0.0.1:0 >"$log" 2>&1
) &
pid=$!
cleanup() { kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true; }
trap cleanup EXIT

addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's#^observability plane on http://##p' "$log" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "subscribe-smoke: no serve-obs address in:"; cat "$log"; exit 1; }
echo "subscribe-smoke: plane at $addr"

# Second subscriber, over SSE. It outlives the REPL's sys.subscriptions
# query, so the table has a live row to report; the server closing on
# \quit (or --max-time) ends the stream.
curl -NsS --max-time 15 \
  "http://$addr/subscribe?q=SELECT%20COUNT(*)%20FROM%20orderstate" >"$sse" &
ssepid=$!

# Scrape while both the watch and the SSE subscriber are attached.
sleep 9
metrics=$(mktemp)
curl -fsS "http://$addr/metrics" >"$metrics"
go run ./internal/obshttp/promcheck \
  -require squery_sub_active,squery_sub_delivered_total,squery_sub_shed_total,squery_sub_resyncs_total,squery_sub_failfast_total \
  "$metrics"
grep -q '^# HELP squery_sub_delivered_total ' "$metrics"
grep -q '^# HELP squery_sub_active ' "$metrics"
echo "subscribe-smoke: metrics families ok"

wait "$ssepid" || true # curl exits non-zero when the server closes the stream
grep -q '^event: columns' "$sse" || {
  echo "subscribe-smoke: SSE stream missing columns frame:"; cat "$sse"; exit 1; }
grep -q '^event: snapshot' "$sse" || {
  echo "subscribe-smoke: SSE stream missing snapshot frame:"; cat "$sse"; exit 1; }
echo "subscribe-smoke: SSE frames ok"

wait "$pid"
trap - EXIT
if grep -q 'error:' "$log"; then
  echo "subscribe-smoke: a query errored:"; cat "$log"; exit 1
fi
# \watch streamed its initial full-result frame into the REPL.
grep -qF -- '-- snapshot @wm' "$log" || {
  echo "subscribe-smoke: \\watch produced no snapshot frame:"; cat "$log"; exit 1; }
# sys.subscriptions reported the SSE subscriber (its tables column).
grep -q 'orderstate' "$log" || {
  echo "subscribe-smoke: sys.subscriptions shows no subscriber:"; cat "$log"; exit 1; }
echo "subscribe-smoke: REPL watch + sys tables ok"
echo "subscribe-smoke: PASS"
