// Windowed-analytics example: event-time tumbling windows whose *open*
// windows are themselves queryable state — the "black box" opened for
// in-flight aggregations, not just completed ones.
//
// A payment stream is summed per merchant in 1-minute event-time windows.
// While the stream is running, S-QUERY answers: how much money is sitting
// in windows that have not closed yet?
package main

import (
	"fmt"
	"log"
	"time"

	"squery"
)

func main() {
	eng := squery.New(squery.Config{Nodes: 3})

	// Payments with deterministic event times: merchant m receives
	// amount a at a synthetic timestamp walking forward 700ms per event.
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	src := squery.GeneratorSource("payments", 1, 5_000, func(instance int, seq int64) (squery.Record, bool) {
		if seq >= 600 {
			return squery.Record{}, false
		}
		return squery.Record{
			Key:       fmt.Sprintf("merchant-%d", seq%4),
			Value:     100 + int(seq%37),
			EventTime: base.Add(time.Duration(seq) * 700 * time.Millisecond),
		}, true
	})
	src.Watermarks = &squery.WatermarkPolicy{Every: 8, Lag: 2 * time.Second}

	sum := func(acc any, rec squery.Record) any {
		n := 0
		if acc != nil {
			n = acc.(int)
		}
		return n + rec.Value.(int)
	}

	closed := 0
	dag := squery.NewDAG().
		AddVertex(src).
		AddVertex(squery.TumblingWindowVertex("revenue", 2, time.Minute, sum)).
		AddVertex(squery.SinkVertex("sink", 1, func(rec squery.Record) {
			wr := rec.Value.(squery.WindowResult)
			closed++
			if closed <= 8 {
				fmt.Printf("closed window %s [%s, %s): total %v\n",
					rec.Key,
					wr.Start.Format("15:04:05"), wr.End.Format("15:04:05"), wr.Value)
			}
		})).
		Connect("payments", "revenue", squery.EdgePartitioned).
		Connect("revenue", "sink", squery.EdgePartitioned)

	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "revenue-windows",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	// Mid-stream: query the open (unfinished) windows live.
	time.Sleep(60 * time.Millisecond)
	res, err := eng.Query(`SELECT partitionKey AS merchant, openWindows FROM revenue ORDER BY merchant`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nopen windows per merchant (live, mid-stream):\n%s\n", res)

	job.Wait()
	fmt.Printf("stream drained; %d windows closed in total\n", closed)
}
