// Q-commerce example: the Delivery Hero use case of §VIII. A job ingests
// order-delivery events into three stateful operators (order info, order
// status, rider locations); S-QUERY answers the paper's four real-time
// business queries directly from the stream processor's internal state —
// the architecture that replaces the cache + database layer of Figure 7.
package main

import (
	"fmt"
	"log"
	"time"

	"squery"
	"squery/internal/qcommerce"
)

func main() {
	eng := squery.New(squery.Config{Nodes: 3})
	dag := qcommerce.DAG(qcommerce.Config{
		Orders:              5_000,
		Riders:              500,
		Rate:                40_000,
		SourceParallelism:   3,
		OperatorParallelism: 6,
	}, squery.SinkVertex("sink", 3, func(squery.Record) {}))

	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "qcommerce",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 400 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	// Wait for the state to populate and the first snapshot to commit.
	for job.LatestSnapshotID() == 0 || job.SourceRecords() < 20_000 {
		time.Sleep(10 * time.Millisecond)
	}

	names := []string{
		"Query 1 — late orders per area",
		"Query 2 — ready for pickup per category",
		"Query 3 — in preparation per area",
		"Query 4 — in transit per area",
	}
	for i, q := range qcommerce.Queries {
		start := time.Now()
		// The paper's queries run at serializable isolation: they only
		// touch snapshot tables (§VII).
		res, err := eng.QueryIsolated(q, squery.Serializable)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s (%s) ---\n%s\n", names[i], time.Since(start).Round(time.Microsecond), res)
	}

	// The direct-object interface: where is rider-42 right now?
	loc := eng.Object("riderlocation").GetLive(qcommerce.RiderKey(42))[0]
	if loc != nil {
		r := loc.(qcommerce.RiderLocation)
		fmt.Printf("rider-42 live position: (%.3f, %.3f) at %s\n",
			r.Lat, r.Lon, r.UpdatedAt.Format(time.TimeOnly))
	}

	// An ad-hoc join the original topology never anticipated — no new
	// streaming job required (§III, "simplifying streaming topologies").
	res, err := eng.Query(`SELECT COUNT(*) AS monitored, vendorCategory FROM "snapshot_orderinfo" GROUP BY vendorCategory ORDER BY monitored DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- ad-hoc: monitored orders per category ---\n%s", res)
}
