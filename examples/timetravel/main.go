// Time-travel debugging example: the use case of §III ("Debugging") and
// §VII's isolation-level discussion, shown end to end.
//
// A counting job runs with snapshots retained; we
//  1. watch the live (read-uncommitted) state run ahead of the latest
//     committed snapshot,
//  2. pin queries to older snapshot ids to see how the state mutated over
//     time,
//  3. inject a failure and observe the dirty read of Figure 5: the value
//     a live query returned before the crash "never happened", while the
//     snapshot-pinned query (Figure 6) keeps returning the same answer.
package main

import (
	"fmt"
	"log"
	"time"

	"squery"
)

func main() {
	eng := squery.New(squery.Config{Nodes: 3})

	// A steady counter: one record per key per tick.
	src := squery.GeneratorSource("ticks", 1, 2000, func(instance int, seq int64) (squery.Record, bool) {
		return squery.Record{Key: int(seq % 8), Value: 1}, true
	})
	dag := squery.NewDAG().
		AddVertex(src).
		AddVertex(squery.StatefulMapVertex("counter", 2,
			func(state any, rec squery.Record) (any, []squery.Record) {
				n := 0
				if state != nil {
					n = state.(int)
				}
				return n + 1, nil
			})).
		AddVertex(squery.SinkVertex("sink", 1, func(squery.Record) {})).
		Connect("ticks", "counter", squery.EdgePartitioned).
		Connect("counter", "sink", squery.EdgePartitioned)

	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "timetravel",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 250 * time.Millisecond,
		Retention:        4, // keep more history than the default 2
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	// Let a few snapshots accumulate.
	for len(job.QueryableSnapshots()) < 4 {
		time.Sleep(10 * time.Millisecond)
	}

	// 1. Live state runs ahead of the snapshot state.
	live := total(eng, `SELECT SUM(value) AS total FROM counter`)
	snap := total(eng, `SELECT SUM(value) AS total FROM snapshot_counter`)
	fmt.Printf("live total=%d  latest-snapshot total=%d  (live runs ahead: %v)\n",
		live, snap, live >= snap)

	// 2. Time travel: the same query pinned to each retained version.
	fmt.Println("\nstate history across retained snapshots:")
	for _, ssid := range job.QueryableSnapshots() {
		v := total(eng, fmt.Sprintf(`SELECT SUM(value) AS total FROM snapshot_counter WHERE ssid = %d`, ssid))
		fmt.Printf("  snapshot %2d: total=%d\n", ssid, v)
	}

	// 3. Figure 5: dirty read demonstration.
	pinned := job.LatestSnapshotID()
	before := total(eng, `SELECT SUM(value) AS total FROM counter`)
	pinnedBefore := total(eng, fmt.Sprintf(`SELECT SUM(value) AS total FROM snapshot_counter WHERE ssid = %d`, pinned))

	recoveredTo, err := job.InjectFailure()
	if err != nil {
		log.Fatal(err)
	}
	after := total(eng, `SELECT SUM(value) AS total FROM counter`)
	pinnedAfter := total(eng, fmt.Sprintf(`SELECT SUM(value) AS total FROM snapshot_counter WHERE ssid = %d`, pinned))

	fmt.Printf("\nfailure injected; recovered to snapshot %d\n", recoveredTo)
	fmt.Printf("  live total before crash: %d (read uncommitted — a dirty read)\n", before)
	fmt.Printf("  live total right after recovery: %d (rolled back)\n", after)
	fmt.Printf("  snapshot-%d total before/after crash: %d / %d (serializable — unchanged: %v)\n",
		pinned, pinnedBefore, pinnedAfter, pinnedBefore == pinnedAfter)
}

func total(eng *squery.Engine, q string) int64 {
	res, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Rows[0][0] == nil {
		return 0
	}
	return res.Rows[0][0].(int64)
}
