// NEXMark example: runs the paper's overhead workload — NEXMark query 6
// (average selling price of each seller's last 10 auctions) — with
// periodic checkpoints, then uses S-QUERY to watch the internal state
// evolve across snapshot versions while the job keeps running.
package main

import (
	"fmt"
	"log"
	"time"

	"squery"
	"squery/internal/metrics"
	"squery/internal/nexmark"
)

func main() {
	eng := squery.New(squery.Config{Nodes: 3})
	latency := metrics.NewHistogram()

	dag := nexmark.Query6DAG(nexmark.Config{
		Sellers:             1000,
		BidsPerAuction:      3,
		Rate:                30_000, // events/s per source instance
		SourceParallelism:   3,
		OperatorParallelism: 6,
	}, latency)

	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "nexmark-q6",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 300 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	// Watch the top sellers across three consecutive snapshots: the
	// historical-query capability of §II ("query that state as it
	// evolves with time").
	for round := 1; round <= 3; round++ {
		waitForNextSnapshot(job)
		ssid := job.LatestSnapshotID()
		res, err := eng.Query(fmt.Sprintf(
			`SELECT partitionKey AS seller, sold, average FROM "snapshot_selleravg" WHERE ssid = %d ORDER BY sold DESC, seller LIMIT 5`, ssid))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- snapshot %d: top sellers by items sold ---\n%s\n", ssid, res)
	}

	// Live vs snapshot: the live count is always >= the snapshot count,
	// because the live table sees uncommitted processing.
	live, err := eng.Query(`SELECT COUNT(*) FROM selleravg`)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := eng.QueryIsolated(`SELECT COUNT(*) FROM snapshot_selleravg`, squery.Serializable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sellers with state: live=%v snapshot=%v\n", live.Rows[0][0], snap.Rows[0][0])

	fmt.Printf("\nsource->sink latency while querying: %s\n", latency.Snapshot())
	fmt.Printf("snapshot 2PC latency:               %s\n", job.SnapshotTotal().Snapshot())
	fmt.Printf("events processed: %d (%.0f events/s)\n", job.SourceRecords(), job.SourceRate())
}

func waitForNextSnapshot(job *squery.Job) {
	cur := job.LatestSnapshotID()
	for job.LatestSnapshotID() == cur {
		time.Sleep(5 * time.Millisecond)
	}
}
