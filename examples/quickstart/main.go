// Quickstart: the paper's running example (Figure 2) end to end — a
// stream of numbers, a stateful 'average' operator, and ad-hoc SQL over
// the operator's internal state, live and from a snapshot.
package main

import (
	"encoding/gob"
	"fmt"
	"log"

	"squery"
)

// avgState is the operator state of Figure 2: a count and a running
// total. Exported fields become SQL columns (count, total).
type avgState struct {
	Count int
	Total int
}

func init() { gob.Register(avgState{}) }

func main() {
	// A 3-node simulated cluster with the default 271 partitions.
	eng := squery.New(squery.Config{Nodes: 3})

	// The input stream of Figure 2: 10, 30, 5 for key 1 — plus a second
	// key so the state has more than one row.
	records := []squery.Record{
		{Key: 1, Value: 10},
		{Key: 1, Value: 30},
		{Key: 2, Value: 5},
		{Key: 1, Value: 5},
		{Key: 2, Value: 15},
	}

	// source → average → sink. The 'average' vertex is stateful: its
	// keyed state is automatically exposed as the SQL tables `average`
	// (live) and `snapshot_average` (snapshots).
	dag := squery.NewDAG().
		AddVertex(squery.SliceSource("source", 1, records)).
		AddVertex(squery.StatefulMapVertex("average", 2,
			func(state any, rec squery.Record) (any, []squery.Record) {
				s := avgState{}
				if state != nil {
					s = state.(avgState)
				}
				s.Count++
				s.Total += rec.Value.(int)
				avg := float64(s.Total) / float64(s.Count)
				return s, []squery.Record{{Key: rec.Key, Value: avg}}
			})).
		AddVertex(squery.SinkVertex("sink", 1, func(rec squery.Record) {
			fmt.Printf("  average(key=%v) -> %.1f\n", rec.Key, rec.Value)
		})).
		Connect("source", "average", squery.EdgePartitioned).
		Connect("average", "sink", squery.EdgePartitioned)

	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:  "quickstart",
		State: squery.StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	fmt.Println("streaming output:")
	job.Wait()

	// Live state query — Figure 4, left side.
	fmt.Println("\nSELECT count, total FROM average WHERE partitionKey = 1")
	res, err := eng.Query(`SELECT count, total FROM average WHERE partitionKey = 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())

	// The simplification §III promises: the count of items seen so far
	// comes straight out of the averaging operator's state — no second
	// job needed.
	res, err = eng.Query(`SELECT SUM(count) AS items_seen FROM average`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT SUM(count) AS items_seen FROM average")
	fmt.Print(res.String())

	// Direct object interface: fetch the raw state object.
	st := eng.Object("average").GetLive(1)[0].(avgState)
	fmt.Printf("\ndirect object read: key=1 -> %+v\n", st)
}
