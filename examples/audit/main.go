// Audit example: the compliance use case of §III. A job persists its
// checkpoints to stable storage; later — with the job long gone, as after
// a GDPR data-access request — a separate engine opens the archive and
// answers SQL over the preserved state, including per-subject lookups.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"squery"
	"squery/internal/qcommerce"
)

func main() {
	dir, err := os.MkdirTemp("", "squery-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Lifetime 1: the production job, checkpointing to disk. ------
	eng := squery.New(squery.Config{Nodes: 3})
	dag := qcommerce.DAG(qcommerce.Config{
		Orders:              2_000,
		Riders:              200,
		Rate:                40_000,
		SourceParallelism:   3,
		OperatorParallelism: 3,
	}, squery.SinkVertex("sink", 3, func(squery.Record) {}))
	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "production",
		State:            squery.StateConfig{Snapshots: true},
		SnapshotInterval: 300 * time.Millisecond,
		PersistDir:       dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	for job.LatestSnapshotID() < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	processed := job.SourceRecords()
	job.Stop()
	fmt.Printf("production job stopped after %d events; snapshots archived in %s\n\n", processed, dir)

	// --- Lifetime 2: the auditor's engine, job not running. ----------
	auditor := squery.New(squery.Config{Nodes: 2})
	ssid, ops, err := auditor.OpenArchive(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened archive: snapshot %d, operators %v\n\n", ssid, ops)

	// Aggregate compliance report: how much personal data is held?
	res, err := auditor.QueryIsolated(
		`SELECT COUNT(*) AS orders_on_file FROM snapshot_orderinfo`, squery.Serializable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders on file:\n%s\n", res)

	// Subject access request: everything stored about one order.
	res, err = auditor.Query(
		`SELECT * FROM snapshot_orderinfo WHERE partitionKey = 'order-42'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data held for order-42:\n%s\n", res)

	res, err = auditor.Query(
		`SELECT orderState, lateTimestamp FROM snapshot_orderstate WHERE partitionKey = 'order-42'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processing state for order-42:\n%s", res)
}
