package squery

import (
	"testing"
	"time"
)

// TestReadCommittedViaActiveStandby exercises the §VII extension: with
// active standby replication enabled, a failure promotes the replica
// instead of rolling back, so a value returned by a live query before the
// crash remains valid after it — the read committed isolation level the
// paper describes for the high-availability setup.
func TestReadCommittedViaActiveStandby(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	cs := &controlledSource{}
	dag := NewDAG().
		AddVertex(&Vertex{Name: "source", Kind: KindSource, Parallelism: 1,
			NewSource: func(int, int) SourceInstance { return cs }}).
		AddVertex(StatefulMapVertex("count", 1, func(state any, rec Record) (any, []Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			return n + 1, nil
		})).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "count", EdgePartitioned).
		Connect("count", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{
		Name:  "ha-counts",
		State: StateConfig{Live: true, Snapshots: true, ActiveStandby: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	waitFor(t, func() bool {
		return eng.Object("count").GetLive("counter")[0] == 4
	}, "counter to reach 4")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// One uncommitted update past the checkpoint.
	cs.gate.Store(true)
	waitFor(t, func() bool {
		return eng.Object("count").GetLive("counter")[0] == 5
	}, "counter to reach 5")
	cs.gate.Store(false)
	time.Sleep(5 * time.Millisecond) // let the record clear the pipeline

	// Crash. With a standby, the observed 5 must survive — no rollback,
	// no dirty read.
	if _, err := job.InjectFailure(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Object("count").GetLive("counter")[0]; got != 5 {
		t.Fatalf("live counter after standby failover = %v, want 5 (read committed)", got)
	}
	// And it stays 5: the source does not replay the record (offsets
	// resumed from the live position).
	time.Sleep(20 * time.Millisecond)
	if got := eng.Object("count").GetLive("counter")[0]; got != 5 {
		t.Fatalf("live counter drifted to %v after failover", got)
	}
}

// TestStandbyRecoveryWithZeroSnapshots covers the standby failover path
// before any checkpoint ever committed: there is no snapshot to roll back
// to, but with active standby none is needed — the replicas are promoted,
// the live value survives, and the sources resume from their live offsets
// instead of replaying from zero.
func TestStandbyRecoveryWithZeroSnapshots(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	cs := &controlledSource{}
	dag := NewDAG().
		AddVertex(&Vertex{Name: "source", Kind: KindSource, Parallelism: 1,
			NewSource: func(int, int) SourceInstance { return cs }}).
		AddVertex(StatefulMapVertex("zerosnap", 1, func(state any, rec Record) (any, []Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			return n + 1, nil
		})).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "zerosnap", EdgePartitioned).
		Connect("zerosnap", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{
		Name:  "ha-zero",
		State: StateConfig{Live: true, Snapshots: true, ActiveStandby: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	waitFor(t, func() bool {
		return eng.Object("zerosnap").GetLive("counter")[0] == 4
	}, "counter to reach 4")

	// Crash with zero committed snapshots. No rollback-to-nothing, no
	// replay: the promoted replicas carry the full live state.
	ssid, err := job.InjectFailure()
	if err != nil {
		t.Fatal(err)
	}
	if ssid != 0 {
		t.Fatalf("recovered to snapshot %d, want 0 (none ever committed)", ssid)
	}
	if got := eng.Object("zerosnap").GetLive("counter")[0]; got != 4 {
		t.Fatalf("live counter after zero-snapshot failover = %v, want 4", got)
	}

	// Processing continues from the live offsets: exactly one more record.
	cs.gate.Store(true)
	waitFor(t, func() bool {
		return eng.Object("zerosnap").GetLive("counter")[0] == 5
	}, "counter to reach 5 after failover")
	time.Sleep(10 * time.Millisecond)
	if got := eng.Object("zerosnap").GetLive("counter")[0]; got != 5 {
		t.Fatalf("live counter drifted to %v after failover (records replayed?)", got)
	}

	// The machinery is intact: a checkpoint can still commit afterwards.
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if got := job.LatestSnapshotID(); got != 1 {
		t.Fatalf("post-failover checkpoint id = %d, want 1", got)
	}
}

// TestNodeFailureThenJobRecovery is the full §V.A failure story: a
// cluster member dies (its state partitions survive via synchronous
// replication), the job crashes and recovers from the latest committed
// snapshot — whose entries now live on the promoted backup copies — and
// processing converges to exactly-once state.
func TestNodeFailureThenJobRecovery(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	const perInstance = 500
	src := GeneratorSource("src", 2, 3000, func(instance int, seq int64) (Record, bool) {
		if seq >= perInstance {
			return Record{}, false
		}
		return Record{Key: int(seq % 10), Value: 1}, true
	})
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("tally", 3, func(state any, rec Record) (any, []Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			return n + rec.Value.(int), nil
		})).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("src", "tally", EdgePartitioned).
		Connect("tally", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{
		Name:  "tally-job",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	waitFor(t, func() bool { return job.SourceRecords() > 150 }, "records flowing")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return job.SourceRecords() > 300 }, "more records")

	// Kill a node, then crash the job; the snapshot map survives through
	// the promoted replicas, so recovery still lands on checkpoint 1.
	eng.FailNode(1)
	ssid, err := job.InjectFailure()
	if err != nil {
		t.Fatal(err)
	}
	if ssid != 1 {
		t.Fatalf("recovered to %d, want 1", ssid)
	}
	job.Wait()

	// Exactly-once: 1000 records over 10 keys = 100 each.
	total := int64(0)
	res, err := eng.Query(`SELECT SUM(value) AS total FROM tally`)
	if err != nil {
		t.Fatal(err)
	}
	total = res.Rows[0][0].(int64)
	if total != perInstance*2 {
		t.Fatalf("total = %d, want %d (exactly-once across node failure + recovery)", total, perInstance*2)
	}
}

// TestPersistedArchiveQueries covers the stable-storage path end to end:
// a job persists its checkpoints to disk; a second engine — a different
// "process" — opens the archive and answers snapshot queries without the
// job running (the audit use case of §III).
func TestPersistedArchiveQueries(t *testing.T) {
	dir := t.TempDir()
	eng := New(Config{Nodes: 3, Partitions: 27})
	recs := make([]Record, 60)
	for i := range recs {
		recs[i] = Record{Key: i % 6, Value: 1}
	}
	gate := make(chan struct{})
	src := GeneratorSource("src", 1, 0, func(instance int, seq int64) (Record, bool) {
		if seq < 60 {
			return recs[seq], true
		}
		select {
		case <-gate:
			return Record{}, false
		default:
		}
		time.Sleep(100 * time.Microsecond)
		return Record{Key: 0, Value: 0}, true
	})
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("tallies", 2, func(state any, rec Record) (any, []Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			return n + rec.Value.(int), nil
		})).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("src", "tallies", EdgePartitioned).
		Connect("tallies", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{
		Name:       "archival",
		State:      StateConfig{Snapshots: true},
		PersistDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return job.SourceRecords() >= 60 }, "records")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	close(gate)
	job.Wait()
	job.Stop()

	// "Another process": fresh engine, no job — query the archive.
	eng2 := New(Config{Nodes: 2, Partitions: 16})
	ssid, ops, err := eng2.OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ssid != 1 || len(ops) != 1 || ops[0] != "tallies" {
		t.Fatalf("archive = ssid %d, ops %v", ssid, ops)
	}
	res, err := eng2.QueryIsolated(`SELECT SUM(value) AS total, COUNT(*) AS keys FROM snapshot_tallies`, Serializable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) < 60 || res.Rows[0][1] != int64(6) {
		t.Fatalf("archive query = %v", res.Rows)
	}
	// Opening an empty archive fails cleanly.
	if _, _, err := eng2.OpenArchive(t.TempDir()); err == nil {
		t.Fatal("empty archive opened")
	}
}
