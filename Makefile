GO ?= go

.PHONY: test vet race soak-chaos verify

# Tier-1: what CI gates on.
test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short deterministic chaos soak under the race detector: seed 1's fault
# schedule (mid-checkpoint node crash, coordinator-worker partition,
# dropped barrier, duplicated ack, stalled/unreachable partitions) against
# the exactly-once oracle check.
soak-chaos:
	$(GO) run -race ./cmd/squery-soak -chaos -seed 1 -duration 5s

verify: vet race soak-chaos
