GO ?= go

.PHONY: test vet race soak-chaos fuzz-short verify

# Tier-1: what CI gates on.
test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short deterministic chaos soak under the race detector: seed 1's fault
# schedule (mid-checkpoint node crash, coordinator-worker partition,
# dropped barrier, duplicated ack, stalled/unreachable partitions) against
# the exactly-once oracle check.
soak-chaos:
	$(GO) run -race ./cmd/squery-soak -chaos -seed 1 -duration 5s

# Short fuzz wall: 30s per target against the SQL front end. The parser
# and lexer must be total — errors, never panics — on arbitrary input.
fuzz-short:
	$(GO) test ./internal/sql -fuzz FuzzParse -fuzztime 30s -run '^$$'
	$(GO) test ./internal/sql -fuzz FuzzLexer -fuzztime 30s -run '^$$'

verify: vet race soak-chaos
