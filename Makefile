GO ?= go
GOFILES := $(shell git ls-files '*.go')

.PHONY: test vet lint race soak-chaos soak-rebalance fuzz-short obs-smoke health-smoke bench-smoke ckpt-smoke index-smoke subscribe-smoke verify

# Tier-1: what CI gates on.
test:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Lint gate: vet plus gofmt over every tracked Go file. Fails with the
# offending file list if anything is unformatted.
lint: vet
	@unformatted="$$(gofmt -l $(GOFILES))"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Short deterministic chaos soak under the race detector: seed 1's fault
# schedule (mid-checkpoint node crash, coordinator-worker partition,
# dropped barrier, duplicated ack, stalled/unreachable partitions) against
# the exactly-once oracle check — with tracing on (1-in-16), so the run
# also asserts fired faults left chaos spans and no trace leaked.
soak-chaos:
	$(GO) run -race ./cmd/squery-soak -chaos -seed 1 -duration 5s

# Short deterministic rebalance soak under the race detector: nodes join
# and leave mid-run with seed-derived migration faults (source killed
# mid-handoff, target killed pre-ack, dropped epoch-bump broadcast,
# stalled migrations), verified exactly-once against a static-cluster
# oracle with the forced-write backstop required cold. Runs once over the
# simulated wire and once over loopback TCP; -duration bounds the
# convergence wait, not the run length.
soak-rebalance:
	$(GO) run -race ./cmd/squery-soak -chaos-rebalance -seed 1 -duration 30s
	$(GO) run -race ./cmd/squery-soak -chaos-rebalance -seed 2 -duration 30s -transport tcp

# End-to-end smoke of the HTTP observability plane: boots the real
# squery binary with -serve-obs, waits for /healthz and /readyz, scrapes
# /metrics through the strict Prometheus validator, and checks /tracez
# and pprof answer.
obs-smoke:
	chmod +x scripts/obs-smoke.sh
	./scripts/obs-smoke.sh

# End-to-end smoke of the pipeline health plane: boots squery with an
# injected stage stall, checks /statusz renders lag/pressure/history,
# /metrics carries the health families (promcheck -require), and the
# sys.watermarks / sys.backpressure / sys.history / sys.slow_queries
# tables attribute the stall over the live SQL prompt.
health-smoke:
	chmod +x scripts/health-smoke.sh
	./scripts/health-smoke.sh

# Short fuzz wall: 30s per target against the SQL front end. The parser,
# lexer and planner must be total — errors, never panics — on arbitrary
# input.
fuzz-short:
	$(GO) test ./internal/sql -fuzz FuzzParse -fuzztime 30s -run '^$$'
	$(GO) test ./internal/sql -fuzz FuzzLexer -fuzztime 30s -run '^$$'
	$(GO) test ./internal/sql -fuzz FuzzPlan -fuzztime 30s -run '^$$'
	$(GO) test ./internal/persist -fuzz FuzzDeltaChain -fuzztime 30s -run '^$$'

# Incremental-checkpoint smoke: the crash-recovery suite (every crash
# point of the segment/manifest protocol restores the last committed
# snapshot), the base+delta-chain vs full-restore parity across both
# transports, and the ckpt-scale harness shape check (delta-async runs
# write delta segments, the full-sync baseline none, bytes/ckpt track
# the delta).
ckpt-smoke:
	$(GO) test ./internal/persist -run 'TestCrash|FuzzDeltaChain' -count=1 -v
	$(GO) test . -run 'TestIncrementalRecoveryParity' -race -count=1 -v
	$(GO) test ./internal/experiments -run 'TestCkptScaleShape' -count=1 -v

# Perf smoke over the serialization, join and index hot paths. The
# allocation guards are hard gates (zero-alloc scalar encode in the wire
# codec, single-alloc blob snapshot keys, bounded-alloc indexed puts); the
# short benchmark pass prints codec, joinKey, batched-put and indexed-put
# numbers so regressions show up in CI logs next to the gate.
bench-smoke:
	$(GO) test ./internal/wire ./internal/core -run 'TestZeroAllocScalarEncode|TestBlobKeyAllocs' -count=1 -v
	$(GO) test ./internal/persist -run 'TestDeltaEncodeAllocs' -count=1 -v
	$(GO) test ./internal/kv -run 'TestIndexedPutAllocs' -count=1 -v
	$(GO) test ./internal/wire -run '^$$' -bench 'BenchmarkAppendValue|BenchmarkDecodeValue|BenchmarkGobValue' -benchtime 1000x
	$(GO) test ./internal/persist -run '^$$' -bench 'BenchmarkAppendDeltaSegment' -benchtime 1000x
	$(GO) test ./internal/sql -run '^$$' -bench 'BenchmarkJoinKey' -benchtime 1000x
	$(GO) test ./internal/kv -run '^$$' -bench 'BenchmarkPut|BenchmarkIndexedPut|BenchmarkUnindexedRowPut' -benchtime 1000x

# Index smoke: the access-path parity suite (index results ≡ full-scan
# results for every plannable shape), index survival across an online
# rebalance, and the quick mode of the `squery-bench -exp index` harness
# (rows_scanned must drop to the probe's selectivity).
index-smoke:
	$(GO) test ./internal/sql -run 'TestIndexParity|TestIndexScanStatsAndAnalyze|TestIndexRangeBoundsMerge' -count=1 -v
	$(GO) test . -run 'TestIndexSurvivesRebalance|TestSysIndexesTable' -race -count=1 -v
	$(GO) test ./internal/experiments -run 'TestIndexExpShape' -count=1 -v

# Standing-query smoke: boots the live binary, drives `\watch` and the
# SSE /subscribe endpoint against the running job, checks that
# sys.subscriptions / sys.arrangements account for the live subscriber
# and that /metrics carries the squery_sub_* families (promcheck
# -require), then the arrangement/tap unit suites and subscribe-vs-poll
# parity under -race.
subscribe-smoke:
	chmod +x scripts/subscribe-smoke.sh
	./scripts/subscribe-smoke.sh
	$(GO) test ./internal/kv -run 'TestTap|TestDetachTap' -race -count=1 -v
	$(GO) test ./internal/core -run 'TestArrangement' -race -count=1 -v
	$(GO) test . -run 'TestSubscribe' -race -count=1 -v
	$(GO) test ./internal/experiments -run 'TestSubscribeExpShape' -count=1 -v

verify: lint race soak-chaos soak-rebalance bench-smoke ckpt-smoke index-smoke health-smoke subscribe-smoke
