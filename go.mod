module squery

go 1.22
