package squery

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"squery/internal/dataflow"
	"squery/internal/transport"
)

// applySubEvent folds one subscription event into a key→row view: a
// snapshot frame replaces the view, a delta frame patches it — exactly
// what a real consumer maintains.
func applySubEvent(view map[string][]any, ev SubEvent) {
	if ev.Snapshot {
		for k := range view {
			delete(view, k)
		}
	}
	for _, d := range ev.Deltas {
		if d.Delete {
			delete(view, d.Key)
		} else {
			view[d.Key] = d.Vals
		}
	}
}

// drainSub applies every already-queued event without blocking.
func drainSub(s *Subscription, view map[string][]any) {
	for {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				return
			}
			applySubEvent(view, ev)
		default:
			return
		}
	}
}

// viewString renders a view in mustQuery's format (sorted row prints), so
// subscription state and one-shot results compare directly.
func viewString(view map[string][]any) string {
	rows := make([]string, 0, len(view))
	for _, v := range view {
		rows = append(rows, fmt.Sprint(v))
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

// subParityCase pairs a standing query with the one-shot statement that
// serves as its polling oracle.
type subParityCase struct {
	name   string
	sub    string
	oracle string
}

var subParityCases = []subParityCase{
	{
		name:   "filter-project",
		sub:    `SUBSCRIBE SELECT partitionKey, count, total FROM subtally WHERE count > 1`,
		oracle: `SELECT partitionKey, count, total FROM subtally WHERE count > 1`,
	},
	{
		name:   "group-agg",
		sub:    `SUBSCRIBE SELECT count, COUNT(*), SUM(total) FROM subtally GROUP BY count`,
		oracle: `SELECT count, COUNT(*), SUM(total) FROM subtally GROUP BY count`,
	},
	{
		name:   "having",
		sub:    `SUBSCRIBE SELECT count, SUM(total) FROM subtally GROUP BY count HAVING COUNT(*) > 2`,
		oracle: `SELECT count, SUM(total) FROM subtally GROUP BY count HAVING COUNT(*) > 2`,
	},
	{
		name:   "global-agg",
		sub:    `SUBSCRIBE SELECT COUNT(*), SUM(total), MIN(count) FROM subtally`,
		oracle: `SELECT COUNT(*), SUM(total), MIN(count) FROM subtally`,
	},
	{
		name:   "self-join",
		sub:    `SUBSCRIBE SELECT a.partitionKey, a.total, b.total FROM subtally a JOIN subtally b ON a.partitionKey = b.partitionKey WHERE b.total > 4`,
		oracle: `SELECT a.partitionKey, a.total, b.total FROM subtally a JOIN subtally b ON a.partitionKey = b.partitionKey WHERE b.total > 4`,
	},
}

// converge drains a subscription until its maintained view equals the
// re-polled oracle (which may itself still be settling), or times out.
func converge(t *testing.T, eng *Engine, s *Subscription, view map[string][]any, c subParityCase) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		drainSub(s, view)
		want := mustQuery(t, eng, c.oracle)
		if viewString(view) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s did not converge to the polling oracle:\n sub:    %s\n oracle: %s",
				c.name, viewString(view), want)
		}
		select {
		case ev, ok := <-s.Events():
			if ok {
				applySubEvent(view, ev)
			}
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// subTallyRecords builds the three-phase workload: inserts, then updates
// + deletes + a re-insert (so standing queries see upserts and
// tombstones), then another update wave.
func subTallyRecords(keys int) (recs []Record, phase1 int) {
	for i := 0; i < 3*keys; i++ {
		recs = append(recs, Record{Key: i % keys, Value: i%5 + 1})
	}
	phase1 = len(recs)
	for _, k := range []int{0, 3, 7} {
		recs = append(recs, Record{Key: k, Value: 10})
	}
	recs = append(recs, Record{Key: 5, Value: -1}, Record{Key: 9, Value: -1})
	recs = append(recs, Record{Key: 9, Value: 3})
	for i := 0; i < keys; i++ {
		recs = append(recs, Record{Key: i, Value: 4})
	}
	return recs, phase1
}

// startSubTallyJob runs the subtally workload up to phase 1 and returns
// the controls to release the rest.
func startSubTallyJob(t *testing.T, eng *Engine, recs []Record, phase1 int) (release func(), finish func()) {
	t.Helper()
	var limit atomic.Int64
	done := make(chan struct{})
	src := &Vertex{
		Name:        "source",
		Kind:        KindSource,
		Parallelism: 1,
		NewSource: func(int, int) dataflow.SourceInstance {
			return &phasedParitySource{recs: recs, limit: &limit, done: done}
		},
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("subtally", 2, tallyFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "subtally", EdgePartitioned).
		Connect("subtally", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "subparity", State: StateConfig{Live: true}})
	if err != nil {
		t.Fatal(err)
	}
	limit.Store(int64(phase1))
	// >=, not ==: a post-join reschedule replays the source, so the sink
	// can legitimately count records twice.
	waitFor(t, func() bool { return sunk.Load() >= int64(phase1) }, "phase-1 records sunk")
	release = func() {
		limit.Store(int64(len(recs)))
		waitFor(t, func() bool { return sunk.Load() >= int64(len(recs)) }, "all records sunk")
	}
	finish = func() {
		limit.Store(int64(len(recs)))
		close(done)
		job.Wait()
		job.Stop()
	}
	return release, finish
}

// runSubscribeParity is the heart of the standing-query acceptance: for
// every supported query shape, a subscription's initial snapshot plus its
// applied deltas must equal the re-polled one-shot result — across
// updates, deletes and re-inserts, on the given transport.
func runSubscribeParity(t *testing.T, tr transport.Transport) {
	eng := New(Config{Nodes: 3, Partitions: 27, Transport: tr})
	defer eng.Close()
	recs, phase1 := subTallyRecords(12)
	release, finish := startSubTallyJob(t, eng, recs, phase1)
	defer finish()

	subs := make([]*Subscription, len(subParityCases))
	views := make([]map[string][]any, len(subParityCases))
	for i, c := range subParityCases {
		s, err := eng.Subscribe(c.sub)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		defer s.Close()
		subs[i] = s
		views[i] = map[string][]any{}
		// The first frame is the synchronously enqueued initial snapshot.
		select {
		case ev := <-s.Events():
			if !ev.Snapshot {
				t.Fatalf("%s: first frame is not a snapshot", c.name)
			}
			applySubEvent(views[i], ev)
		default:
			t.Fatalf("%s: no initial snapshot frame queued", c.name)
		}
		converge(t, eng, subs[i], views[i], c)
	}

	// The five standing queries over one table share one arrangement:
	// 4 single-source + 1 self-join = 6 readers of "subtally".
	arrs := eng.Arrangements()
	if len(arrs) != 1 || arrs[0].Table != "subtally" || arrs[0].Refs != 6 {
		t.Fatalf("arrangements = %+v, want one subtally arrangement with 6 refs", arrs)
	}

	// Phase 2+3: updates, deletes, re-insert, update wave — the deltas.
	release()
	for i, c := range subParityCases {
		converge(t, eng, subs[i], views[i], c)
	}

	// sys.* visibility: the standing plane is queryable like any state.
	subRows := mustQuery(t, eng, `SELECT subscription, policy FROM sys.subscriptions`)
	if got := strings.Count(subRows, "]"); got != len(subParityCases)+1 {
		t.Fatalf("sys.subscriptions has %d rows, want %d: %s", got-1, len(subParityCases), subRows)
	}
	arrRows := mustQuery(t, eng, `SELECT table, refs FROM sys.arrangements WHERE refs = 6`)
	if !strings.Contains(arrRows, "subtally") {
		t.Fatalf("sys.arrangements missing shared subtally arrangement: %s", arrRows)
	}
	for _, s := range subs {
		if st := s.Stats(); st.Watermark == 0 || st.Delivered == 0 {
			t.Fatalf("subscription %d saw no deltas: %+v", st.ID, st)
		}
	}

	// Zero-reader teardown: closing every subscription drops the shared
	// arrangement entirely.
	for _, s := range subs {
		s.Close()
	}
	if arrs := eng.Arrangements(); len(arrs) != 0 {
		t.Fatalf("arrangements survive zero readers: %+v", arrs)
	}
	if subs := eng.Subscriptions(); len(subs) != 0 {
		t.Fatalf("subscriptions survive Close: %+v", subs)
	}
}

// TestSubscribeParity: initial snapshot + applied deltas ≡ the re-polled
// one-shot query, for every supported shape, on the simulated transport.
func TestSubscribeParity(t *testing.T) { runSubscribeParity(t, nil) }

// TestSubscribeParityTCP: the same invariant over real loopback-TCP
// framing — subscriptions are transport-independent.
func TestSubscribeParityTCP(t *testing.T) {
	lb, err := transport.NewLoopback()
	if err != nil {
		t.Fatal(err)
	}
	runSubscribeParity(t, lb)
}

// TestSubscribeShedResync: a consumer that stops reading overflows its
// bounded queue; the default policy sheds the backlog and enqueues one
// fresh snapshot frame, from which the late consumer re-converges to the
// polling oracle.
func TestSubscribeShedResync(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	defer eng.Close()
	recs, phase1 := subTallyRecords(16)
	release, finish := startSubTallyJob(t, eng, recs, phase1)
	defer finish()

	c := subParityCases[0]
	s, err := eng.SubscribeWithOptions(c.sub, SubOptions{Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Do not read: every delta batch beyond the first overflows the
	// 1-slot queue and must shed+resync rather than block the applier.
	release()
	waitFor(t, func() bool { return s.Stats().Shed > 0 && s.Stats().Resyncs > 0 }, "overload shed a frame")

	view := map[string][]any{}
	converge(t, eng, s, view, c)
	st := s.Stats()
	if st.Shed == 0 || st.Resyncs == 0 {
		t.Fatalf("expected shedding and resyncs, got %+v", st)
	}
	if st.Done {
		t.Fatalf("shed+resync must not terminate the subscription: %+v", st)
	}
}

// TestSubscribeFailFast: under PolicyFailFast an overflow terminates the
// subscription — Done closes, Err reports the overflow, and the registry
// forgets it.
func TestSubscribeFailFast(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	defer eng.Close()
	recs, phase1 := subTallyRecords(16)
	release, finish := startSubTallyJob(t, eng, recs, phase1)
	defer finish()

	s, err := eng.SubscribeWithOptions(subParityCases[0].sub, SubOptions{Queue: 1, Policy: PolicyFailFast})
	if err != nil {
		t.Fatal(err)
	}
	release()
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("FailFast subscription did not terminate on overflow")
	}
	if s.Err() == nil {
		t.Fatal("terminated subscription reports no error")
	}
	if subs := eng.Subscriptions(); len(subs) != 0 {
		t.Fatalf("terminated subscription still registered: %+v", subs)
	}
}

// TestSubscribeRejections: the standing dialect is a deliberate subset;
// everything outside it fails at subscribe time with a pointed error, and
// the one-shot path refuses the SUBSCRIBE keyword with a redirect.
func TestSubscribeRejections(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	defer eng.Close()
	recs := []Record{{Key: 1, Value: 2}, {Key: 2, Value: 3}}
	job, err := eng.SubmitJob(averagingJob(recs), JobSpec{Name: "rej", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()

	bad := []struct{ name, q string }{
		{"order-by", `SELECT count FROM average ORDER BY count`},
		{"limit", `SELECT count FROM average LIMIT 5`},
		{"star", `SELECT * FROM average`},
		{"virtual", `SELECT subsystem FROM sys.history`},
		{"snapshot", `SELECT count FROM snapshot_average`},
		{"left-join", `SELECT a.count FROM average a LEFT JOIN average b USING(partitionKey)`},
		{"unknown-table", `SELECT x FROM nosuch`},
	}
	for _, c := range bad {
		if _, err := eng.Subscribe(c.q); err == nil {
			t.Errorf("%s: SUBSCRIBE %s unexpectedly accepted", c.name, c.q)
		}
	}
	if _, err := eng.SubscribeWithOptions(`SELECT count FROM average`, SubOptions{Policy: PolicyRetry}); err == nil {
		t.Error("PolicyRetry accepted as a subscription policy")
	}
	if _, err := eng.Query(`SUBSCRIBE SELECT count FROM average`); err == nil ||
		!strings.Contains(err.Error(), "Subscribe") {
		t.Errorf("one-shot path must redirect SUBSCRIBE, got %v", err)
	}
}

// TestSubscribeSurvivesRebalance: a subscription keeps exact parity when
// the cluster rebalances mid-stream — the arrangement re-snapshots the
// reset partitions, diffs against its view, and forwards only genuine
// differences, so the subscriber sees no duplicates and misses nothing.
func TestSubscribeSurvivesRebalance(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	defer eng.Close()
	recs, phase1 := subTallyRecords(16)
	release, finish := startSubTallyJob(t, eng, recs, phase1)
	defer finish()

	c := subParityCases[1]
	s, err := eng.Subscribe(c.sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	view := map[string][]any{}
	converge(t, eng, s, view, c)

	if _, err := eng.JoinNode(); err != nil {
		t.Fatal(err)
	}
	release()
	waitFor(t, func() bool {
		rebs := eng.Rebalances()
		return len(rebs) > 0 && !rebs[len(rebs)-1].Running
	}, "rebalance finished")
	converge(t, eng, s, view, c)
	if arrs := eng.Arrangements(); len(arrs) != 1 || arrs[0].Resets == 0 {
		t.Fatalf("rebalance caused no arrangement resets: %+v", arrs)
	}
}
