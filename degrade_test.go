package squery

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"squery/internal/chaos"
)

// steppedSource emits 20 records (keys 0..9, twice each), idles until its
// gate opens, emits 10 more (keys 0..9 once), then idles forever. The
// idle phases freeze live state so tests can compare it against snapshots
// deterministically.
type steppedSource struct {
	gate atomic.Bool
	pos  int64
}

func (s *steppedSource) Next() (Record, SourceStatus) {
	if s.pos < 20 || (s.pos < 30 && s.gate.Load()) {
		k := int(s.pos % 10)
		s.pos++
		return Record{Key: k, Value: 1}, SourceOK
	}
	return Record{}, SourceIdle
}

func (s *steppedSource) Offset() int64  { return s.pos }
func (s *steppedSource) Rewind(o int64) { s.pos = o }

// degradeFixture: replicated 3-node engine running an averaging job over a
// stepped source, with live state settled at 20 records (sum(count)==20).
func degradeFixture(t *testing.T) (*Engine, *Job, *steppedSource) {
	t.Helper()
	eng := New(Config{Nodes: 3, Partitions: 12, ReplicateState: true})
	src := &steppedSource{}
	dag := NewDAG().
		AddVertex(&Vertex{
			Name: "source", Kind: KindSource, Parallelism: 1,
			NewSource: func(instance, par int) SourceInstance { return src },
		}).
		AddVertex(StatefulMapVertex("average", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "average", EdgePartitioned).
		Connect("average", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "deg", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(job.Stop)
	waitFor(t, func() bool { return liveSum(t, eng) == 20 }, "live state settled at 20")
	return eng, job, src
}

func liveSum(t *testing.T, eng *Engine) int64 {
	t.Helper()
	res, err := eng.Query(`SELECT SUM(count) FROM average`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] == nil {
		return 0
	}
	return res.Rows[0][0].(int64)
}

// TestQueryPolicyRetry: a transient partition fault (bounded fires) heals
// within the retry deadline; the result is complete and not degraded.
func TestQueryPolicyRetry(t *testing.T) {
	eng, _, _ := degradeFixture(t)
	inj := chaos.New(7).Add(chaos.Rule{
		Kind: chaos.Unreachable, Node: 1,
		Instance: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
		MaxFires: 2,
	})
	eng.SetFaultHook(inj)
	defer eng.SetFaultHook(nil)

	res, err := eng.QueryWithOptions(`SELECT SUM(count) FROM average`, QueryOptions{
		Policy:           PolicyRetry,
		PartitionTimeout: 50 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		RetryDeadline:    5 * time.Second,
	})
	if err != nil {
		t.Fatalf("retry policy did not survive a transient fault: %v", err)
	}
	if res.Rows[0][0] != int64(20) || res.IsDegraded() {
		t.Fatalf("rows = %v degraded = %v, want complete undegraded result", res.Rows, res.Degraded)
	}
	if inj.Fired(chaos.Unreachable) != 2 {
		t.Fatalf("fault fired %d times, want 2", inj.Fired(chaos.Unreachable))
	}
}

// TestQueryPolicyFailFast: a persistent fault surfaces immediately as the
// typed error, with the chaos cause preserved in the unwrap chain — and an
// unguarded query never even consults the fault hook.
func TestQueryPolicyFailFast(t *testing.T) {
	eng, _, _ := degradeFixture(t)
	inj := chaos.New(7).Add(chaos.Rule{
		Kind: chaos.Unreachable, Node: 1,
		Instance: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
	})
	eng.SetFaultHook(inj)
	defer eng.SetFaultHook(nil)

	_, err := eng.QueryWithOptions(`SELECT SUM(count) FROM average`, QueryOptions{Policy: PolicyFailFast})
	var pu *PartitionUnavailableError
	if !errors.As(err, &pu) {
		t.Fatalf("err = %v, want PartitionUnavailableError", err)
	}
	if pu.Node != 1 {
		t.Fatalf("failed node = %d, want 1", pu.Node)
	}
	var ue *chaos.UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("chaos cause not in unwrap chain: %v", err)
	}

	// The data plane and unguarded queries bypass the fault hook entirely.
	if sum := liveSum(t, eng); sum != 20 {
		t.Fatalf("unguarded query sum = %d, want 20", sum)
	}
}

// TestQueryPolicyFallback: with the owner node unreachable, a live query
// degrades the faulted partitions to the latest committed snapshot served
// from backup replicas — and reports the isolation downgrade per
// partition. A snapshot query degrades transparently: the replica holds
// the same committed version, so the result is exact.
func TestQueryPolicyFallback(t *testing.T) {
	eng, job, src := degradeFixture(t)
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	// Advance live state past the snapshot: 10 more records, sum 30 vs the
	// snapshot's 20.
	src.gate.Store(true)
	waitFor(t, func() bool { return liveSum(t, eng) == 30 }, "post-snapshot records")

	inj := chaos.New(7).Add(chaos.Rule{
		Kind: chaos.Unreachable, Node: 1,
		Instance: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
	})
	eng.SetFaultHook(inj)
	defer eng.SetFaultHook(nil)

	opts := QueryOptions{Policy: PolicyFallback, PartitionTimeout: 50 * time.Millisecond}
	res, err := eng.QueryWithOptions(`SELECT SUM(count) FROM average`, opts)
	if err != nil {
		t.Fatalf("fallback policy failed: %v", err)
	}
	if !res.IsDegraded() {
		t.Fatal("no degradation reported despite unreachable node")
	}
	for _, d := range res.Degraded {
		if d.Table != "average" || d.FallbackSSID != 1 {
			t.Fatalf("degradation = %+v, want table average ssid 1", d)
		}
	}
	// Faulted partitions answer as of the snapshot (counts of 20 records),
	// healthy ones live (counts of 30): the mixed sum is bounded by both.
	sum := res.Rows[0][0].(int64)
	if sum < 20 || sum > 30 {
		t.Fatalf("degraded sum = %d, want within [20, 30]", sum)
	}

	// A snapshot-table query serves the exact committed version from the
	// replicas: no data difference, still reported as degraded partitions.
	sres, err := eng.QueryWithOptions(`SELECT SUM(count) FROM snapshot_average`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Rows[0][0] != int64(20) || !sres.IsDegraded() {
		t.Fatalf("snapshot fallback sum = %v degraded = %v, want 20, true", sres.Rows[0][0], sres.IsDegraded())
	}

	// Healing the fault restores full live reads.
	eng.SetFaultHook(nil)
	if sum := liveSum(t, eng); sum != 30 {
		t.Fatalf("healed sum = %d, want 30", sum)
	}
}

// TestQueryPolicyFallbackNeedsSnapshot: before any checkpoint there is
// nothing to degrade to — the policy must fail with the typed error, not
// silently return partial results.
func TestQueryPolicyFallbackNeedsSnapshot(t *testing.T) {
	eng, _, _ := degradeFixture(t)
	inj := chaos.New(7).Add(chaos.Rule{
		Kind: chaos.Unreachable, Node: 1,
		Instance: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
	})
	eng.SetFaultHook(inj)
	defer eng.SetFaultHook(nil)

	_, err := eng.QueryWithOptions(`SELECT SUM(count) FROM average`,
		QueryOptions{Policy: PolicyFallback, PartitionTimeout: 50 * time.Millisecond})
	var pu *PartitionUnavailableError
	if !errors.As(err, &pu) {
		t.Fatalf("err = %v, want PartitionUnavailableError", err)
	}
	if !strings.Contains(err.Error(), "no committed snapshot") {
		t.Fatalf("err = %v, want 'no committed snapshot'", err)
	}
}

// TestQueryPoliciesAgainstStalledPartition: the acceptance scenario — a
// stalled partition under all three policies. Fail-fast times out and
// errors; retry outlasts a bounded stall; fallback serves replicas.
func TestQueryPoliciesAgainstStalledPartition(t *testing.T) {
	eng, job, _ := degradeFixture(t)
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	stall := func(maxFires int) *chaos.Injector {
		return chaos.New(7).Add(chaos.Rule{
			Kind: chaos.StallPartition, Node: 1,
			Instance: chaos.Any, Partition: chaos.Any, CrashNode: chaos.Any,
			Delay: 300 * time.Millisecond, MaxFires: maxFires,
		})
	}
	q := `SELECT SUM(count) FROM average`
	defer eng.SetFaultHook(nil)

	// Fail-fast: the per-partition timeout converts the stall into an
	// immediate typed error instead of a hung query.
	eng.SetFaultHook(stall(0))
	start := time.Now()
	_, err := eng.QueryWithOptions(q, QueryOptions{Policy: PolicyFailFast, PartitionTimeout: 25 * time.Millisecond})
	var pu *PartitionUnavailableError
	if !errors.As(err, &pu) {
		t.Fatalf("stalled fail-fast err = %v, want PartitionUnavailableError", err)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want scan timeout", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("fail-fast took %s against a stalled partition", d)
	}

	// Retry: a stall bounded to 2 fires is outlasted within the deadline.
	eng.SetFaultHook(stall(2))
	res, err := eng.QueryWithOptions(q, QueryOptions{
		Policy:           PolicyRetry,
		PartitionTimeout: 25 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		RetryDeadline:    10 * time.Second,
	})
	if err != nil || res.Rows[0][0] != int64(20) {
		t.Fatalf("retry against bounded stall: res = %v err = %v", res, err)
	}

	// Fallback: an unbounded stall degrades to the snapshot replicas (the
	// backup node is not stalled); live state equals the snapshot here, so
	// the sum is exact.
	eng.SetFaultHook(stall(0))
	res, err = eng.QueryWithOptions(q, QueryOptions{Policy: PolicyFallback, PartitionTimeout: 25 * time.Millisecond})
	if err != nil {
		t.Fatalf("fallback against stall: %v", err)
	}
	if res.Rows[0][0] != int64(20) || !res.IsDegraded() {
		t.Fatalf("fallback sum = %v degraded = %v, want 20, true", res.Rows[0][0], res.IsDegraded())
	}
}
