// Command squery-soak is a chaos/soak harness: it runs the Q-commerce job
// with continuous checkpoints, hammers the state with concurrent SQL and
// direct-object queries, and periodically injects failures — while
// asserting the paper's correctness claims the whole time:
//
//   - snapshot queries are consistent cuts: a join on partitionKey never
//     sees an orderinfo row without its orderstate row for the same
//     snapshot id (serializable isolation, §VII);
//   - the latest committed snapshot id never moves backwards;
//   - recovery converges: after a failure, processing resumes and new
//     snapshots commit.
//
// With -chaos the harness instead runs the deterministic chaos soak: a
// counting workload executes once fault-free (the oracle) and once under
// the seed-derived fault schedule of chaos.SoakSchedule — a mid-checkpoint
// node crash, a coordinator–worker partition, dropped barriers, duplicated
// acks, and stalled/unreachable partitions for the concurrent query
// traffic — and the final states must match exactly (exactly-once). The
// same seed always produces the same schedule; -duration bounds how long
// the chaos run may take to converge.
//
// Any violation aborts the process with a non-zero exit code.
//
// Usage:
//
// With -chaos-rebalance it runs the elastic-membership soak instead: the
// counting workload executes once on a static cluster (the oracle) and
// once while nodes join and leave mid-run, with seed-derived migration
// faults — a source killed mid-handoff, a target killed pre-ack, a dropped
// epoch-bump broadcast, stalled migrations — and the run must converge to
// the oracle exactly-once with zero forced (fence-bypassing) writes.
// -transport selects the wire (sim or tcp) for the rebalance soak too.
//
//	squery-soak [-duration 30s] [-orders 5000] [-failures 3]
//	squery-soak -chaos [-seed 1] [-duration 30s]
//	squery-soak -chaos-rebalance [-seed 1] [-duration 30s] [-transport tcp]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"squery"
	"squery/internal/obshttp"
	"squery/internal/qcommerce"
	"squery/internal/soak"
	"squery/internal/transport"
)

func main() {
	duration := flag.Duration("duration", 30*time.Second, "soak duration")
	orders := flag.Int64("orders", 5_000, "unique orders")
	failures := flag.Int("failures", 3, "failure injections over the run")
	chaosMode := flag.Bool("chaos", false, "run the seeded chaos soak instead of the q-commerce soak")
	rebalanceMode := flag.Bool("chaos-rebalance", false, "run the seeded rebalance soak: joins/leaves with kills mid-migration, verified exactly-once")
	seed := flag.Int64("seed", 1, "chaos schedule seed (-chaos / -chaos-rebalance mode)")
	serveObs := flag.String("serve-obs", "", "serve the HTTP observability plane on this address (e.g. 127.0.0.1:8080)")
	wireKind := flag.String("transport", "sim", `inter-node wire: "sim" (in-process) or "tcp" (loopback TCP frames)`)
	flag.Parse()

	if *chaosMode {
		runChaos(*seed, *duration, *serveObs)
		return
	}
	if *rebalanceMode {
		runChaosRebalance(*seed, *duration, *wireKind)
		return
	}

	cfg := squery.Config{Nodes: 3, ReplicateState: true}
	switch *wireKind {
	case "sim":
	case "tcp":
		lb, err := transport.NewLoopback()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Transport = lb
	default:
		log.Fatalf("unknown -transport %q (want sim or tcp)", *wireKind)
	}
	eng := squery.New(cfg)
	defer eng.Close()
	if *serveObs != "" {
		srv, addr, err := obshttp.Serve(*serveObs, obshttp.Options{
			Metrics: eng.Metrics(),
			Tracer:  eng.Tracer(),
			Health:  eng.Health,
			Ready:   eng.Ready,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("observability plane on http://%s", addr)
	}
	dag := qcommerce.DAG(qcommerce.Config{
		Orders:              *orders,
		Rate:                10_000,
		SourceParallelism:   3,
		OperatorParallelism: 6,
	}, squery.SinkVertex("sink", 3, func(squery.Record) {}))
	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "soak",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 250 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer job.Stop()

	deadline := time.Now().Add(*duration)
	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		queries    atomic.Int64
		violations atomic.Int64
	)
	fail := func(format string, args ...any) {
		violations.Add(1)
		log.Printf("VIOLATION: "+format, args...)
	}

	// Invariant 1: monotone latest snapshot id (except across recovery,
	// which may republish the same id — never an older one).
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := job.LatestSnapshotID()
			if cur < last {
				fail("latest snapshot went backwards: %d after %d", cur, last)
			}
			last = cur
			time.Sleep(time.Millisecond)
		}
	}()

	// Invariant 2: consistent-cut joins. Every order present in
	// snapshot_orderinfo has exactly one snapshot_orderstate row at the
	// same snapshot, so the inner-join row count equals the info count.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if job.LatestSnapshotID() == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				ssid := job.LatestSnapshotID()
				q := fmt.Sprintf(`SELECT COUNT(*) FROM "snapshot_orderinfo" WHERE ssid = %d`, ssid)
				info, err1 := eng.Query(q)
				j := fmt.Sprintf(`SELECT COUNT(*) FROM "snapshot_orderinfo" JOIN "snapshot_orderstate" USING(partitionKey) WHERE ssid = %d`, ssid)
				joined, err2 := eng.Query(j)
				if err1 != nil || err2 != nil {
					// The pinned snapshot can be pruned mid-flight;
					// that is a clean error, not a violation.
					continue
				}
				if !job.SnapshotStillQueryable(ssid) {
					continue
				}
				ni, nj := info.Rows[0][0].(int64), joined.Rows[0][0].(int64)
				// Every order that has info also has a state by
				// construction after warmup; allow startup skew where
				// info rows precede their first status event.
				if nj > ni {
					fail("join produced %d rows from %d info rows at ssid %d", nj, ni, ssid)
				}
				queries.Add(2)
			}
		}()
	}

	// Chaos: periodic failure injection.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if *failures <= 0 {
			return
		}
		interval := time.Duration(int64(*duration) / int64(*failures+1))
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				before := job.LatestSnapshotID()
				ssid, err := job.InjectFailure()
				if err != nil {
					fail("failure injection: %v", err)
					continue
				}
				log.Printf("injected failure; recovered to snapshot %d", ssid)
				// Recovery must converge: a NEW snapshot commits.
				converged := false
				for i := 0; i < 200; i++ {
					if job.LatestSnapshotID() > before {
						converged = true
						break
					}
					time.Sleep(25 * time.Millisecond)
				}
				if !converged {
					fail("no new snapshot after recovery (still %d)", job.LatestSnapshotID())
				}
			}
		}
	}()

	for time.Now().Before(deadline) {
		time.Sleep(250 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	fmt.Printf("soak done: %s, %d records processed, %d invariant queries, %d snapshot(s) committed, %d violations\n",
		*duration, job.SourceRecords(), queries.Load(), job.LatestSnapshotID(), violations.Load())
	if violations.Load() > 0 {
		os.Exit(1)
	}
}

// runChaosRebalance executes the elastic-membership soak and reports the
// exactly-once verdict plus the fencing tally. Forced > 0 means a fenced
// write exhausted its retries and went through anyway — the liveness
// backstop fired, which a healthy run never needs.
func runChaosRebalance(seed int64, deadline time.Duration, wire string) {
	rep, err := soak.RunRebalance(soak.RebalanceConfig{
		Seed: seed, Deadline: deadline, Wire: wire, Logf: log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range rep.Events {
		log.Printf("fired: %s", e)
	}
	fmt.Printf("rebalance soak: seed %d wire %s, %d join(s) %d leave(s) (%d aborted by chaos), %d rebalance(s), %d aborted move(s), %d reschedule(s), epoch %d, fence rejects/retries/forced %d/%d/%d, %d sys queries, exactly-once: %v\n",
		seed, wire, rep.Joins, rep.Leaves, rep.MemErrors, rep.Rebalances, rep.AbortedMoves,
		rep.Reschedules, rep.Epoch, rep.Fence.Rejects, rep.Fence.Retries, rep.Fence.Forced,
		rep.SysQueries, rep.Match)
	if !rep.Match {
		log.Printf("VIOLATION: rebalance counts %v != oracle %v", rep.Counts, rep.Oracle)
		os.Exit(1)
	}
	if rep.Fence.Forced != 0 {
		log.Printf("VIOLATION: %d fenced writes forced through after retry exhaustion", rep.Fence.Forced)
		os.Exit(1)
	}
}

// runChaos executes the deterministic chaos soak and reports the
// exactly-once verdict plus the tracing sanity check: a run that fired
// faults must also have recorded spans, and every fired fault must have
// left a chaos annotation span.
func runChaos(seed int64, deadline time.Duration, obsAddr string) {
	rep, err := soak.Run(soak.Config{Seed: seed, Deadline: deadline, ObsAddr: obsAddr, Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range rep.Events {
		log.Printf("fired: %s", e)
	}
	fmt.Printf("chaos soak: seed %d, %d fault(s) fired, %d checkpoint abort(s), latest snapshot %d, %d guarded queries (%d degraded), %d span(s) (%d chaos, %d failed checkpoint traces), subscriber %d delivered / %d shed / %d resyncs, exactly-once: %v, subscriber reconverged: %v\n",
		seed, len(rep.Events), rep.Aborts, rep.Snapshots, rep.Queries, rep.Degraded,
		rep.Spans, rep.ChaosSpans, rep.FailedCkptTraces,
		rep.SubDelivered, rep.SubShed, rep.SubResyncs, rep.Match, rep.SubMatch)
	if !rep.Match {
		log.Printf("VIOLATION: chaos counts %v != oracle %v", rep.Counts, rep.Oracle)
		os.Exit(1)
	}
	if !rep.SubMatch {
		log.Printf("VIOLATION: shed subscriber failed to re-converge: folded view %v != live counts %v", rep.SubCounts, rep.Counts)
		os.Exit(1)
	}
	if len(rep.Events) > 0 && rep.Spans == 0 {
		log.Printf("VIOLATION: %d faults fired but no spans were recorded", len(rep.Events))
		os.Exit(1)
	}
	if rep.ChaosSpans < int64(len(rep.Events)) {
		// Not fatal: old spans (chaos annotations included) are
		// overwritten once the ring wraps on a long run.
		log.Printf("warning: %d faults fired but only %d chaos spans retained (ring wrapped?)", len(rep.Events), rep.ChaosSpans)
	}
}
