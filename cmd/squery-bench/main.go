// Command squery-bench regenerates the tables and figures of the paper's
// evaluation section (§IX). Each experiment prints the series the paper
// plots; EXPERIMENTS.md records paper-reported vs measured values.
//
// Usage:
//
//	squery-bench -exp fig8        # one experiment
//	squery-bench -exp all         # everything (several minutes)
//	squery-bench -exp fig10 -quick
//
// Experiments: fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 queries
// pushdown obs wire ckpt-scale index subscribe all.
//
// -metrics additionally runs a short fully-instrumented Q-commerce job on
// the engine and prints its plain-text metrics dump — every counter,
// latency histogram and event log the sys.* tables expose.
//
// -serve-obs ADDR keeps a background instrumented Q-commerce job running
// for the life of the process and serves the HTTP observability plane
// (/metrics, /tracez, /healthz, /readyz, /debug/pprof) over it, so
// experiments can be profiled with `go tool pprof` while they run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"squery"
	"squery/internal/experiments"
	"squery/internal/obshttp"
	"squery/internal/qcommerce"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig8..fig15, queries, pushdown, obs, all")
	quick := flag.Bool("quick", false, "shrink durations and key counts")
	dumpMetrics := flag.Bool("metrics", false, "run an instrumented engine workload and print its metrics dump")
	serveObs := flag.String("serve-obs", "", "serve the HTTP observability plane on this address (e.g. 127.0.0.1:8080)")
	flag.Parse()

	if *serveObs != "" {
		stop, err := serveObsPlane(*serveObs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve-obs:", err)
			os.Exit(1)
		}
		defer stop()
	}

	o := experiments.Options{Quick: *quick}
	runners := map[string]func(experiments.Options){
		"fig8":       runFig8,
		"fig9":       runFig9,
		"fig10":      runFig10,
		"fig11":      runFig11,
		"fig12":      runFig12,
		"fig13":      runFig13,
		"fig14":      runFig14,
		"fig15":      runFig15,
		"queries":    runQueries,
		"pushdown":   runPushdown,
		"obs":        runObs,
		"wire":       runWire,
		"ckpt-scale": runCkptScale,
		"index":      runIndex,
		"subscribe":  runSubscribe,
	}
	order := []string{"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "queries", "pushdown", "obs", "wire", "ckpt-scale", "index", "subscribe"}

	switch *exp {
	case "all":
		for _, name := range order {
			run(name, runners[name], o)
		}
	default:
		r, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or all\n", *exp, order)
			os.Exit(2)
		}
		run(*exp, r, o)
	}

	if *dumpMetrics {
		run("metrics", runMetricsDump, o)
	}
}

// serveObsPlane boots a small always-on instrumented Q-commerce job and
// serves the observability plane over it; the returned func tears both
// down.
func serveObsPlane(addr string) (func(), error) {
	eng := squery.New(squery.Config{Nodes: 3})
	dag := qcommerce.DAG(qcommerce.Config{
		Orders:              5_000,
		Rate:                5_000,
		SourceParallelism:   3,
		OperatorParallelism: 6,
	}, squery.SinkVertex("sink", 3, func(squery.Record) {}))
	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "obs",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 250 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	srv, bound, err := obshttp.Serve(addr, obshttp.Options{
		Metrics: eng.Metrics(),
		Tracer:  eng.Tracer(),
		Health:  eng.Health,
		Ready:   eng.Ready,
	})
	if err != nil {
		job.Stop()
		return nil, err
	}
	fmt.Printf("observability plane on http://%s\n\n", bound)
	return func() { srv.Close(); job.Stop() }, nil
}

// runMetricsDump drives a short instrumented Q-commerce job through a
// checkpoint and prints the engine's full plain-text metrics dump.
func runMetricsDump(o experiments.Options) {
	eng := squery.New(squery.Config{Nodes: 3})
	runFor := 2 * time.Second
	if o.Quick {
		runFor = 500 * time.Millisecond
	}
	dag := qcommerce.DAG(qcommerce.Config{
		Orders:              10_000,
		Rate:                50_000,
		SourceParallelism:   3,
		OperatorParallelism: 6,
	}, squery.SinkVertex("sink", 3, func(squery.Record) {}))
	job, err := eng.SubmitJob(dag, squery.JobSpec{
		Name:             "qcommerce",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 100 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		os.Exit(1)
	}
	time.Sleep(runFor)
	job.Stop()
	fmt.Print(eng.MetricsDump())
}

func run(name string, fn func(experiments.Options), o experiments.Options) {
	fmt.Printf("=== %s ===\n", name)
	start := time.Now()
	fn(o)
	fmt.Printf("(%s in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
}

func runFig8(o experiments.Options) {
	fmt.Println(experiments.Table(
		"Figure 8 — source→sink latency by state configuration (NEXMark q6, 3 nodes)",
		experiments.Fig8(o)))
}

func runFig9(o experiments.Options) {
	fmt.Println(experiments.Table(
		"Figure 9 — S-Query (snap) vs Jet at 1x/5x/9x offered load (NEXMark q6, 3 nodes)",
		experiments.Fig9(o)))
}

func runFig10(o experiments.Options) {
	fmt.Println(experiments.Table(
		"Figure 10 — snapshot 2PC latency, S-Query vs Jet (Q-commerce, 7 nodes)",
		experiments.Fig10(o)))
}

func runFig11(o experiments.Options) {
	fmt.Println(experiments.Table(
		"Figure 11 — snapshot 2PC latency with vs without concurrent Query-1 threads",
		experiments.Fig11(o)))
}

func runFig12(o experiments.Options) {
	fmt.Println(experiments.Table(
		"Figure 12 — incremental vs full snapshot 2PC latency by delta ratio (50K keys)",
		experiments.Fig12(o)))
}

func runFig13(o experiments.Options) {
	fmt.Println(experiments.Table(
		"Figure 13 — Query-1 latency on incremental vs full snapshots",
		experiments.Fig13(o)))
}

func runFig14(o experiments.Options) {
	fmt.Println("Figure 14 — direct-object query throughput vs keys selected (100K rider locations)")
	fmt.Printf("%-10s %14s %16s\n", "system", "keys selected", "throughput q/s")
	for _, r := range experiments.Fig14(o) {
		fmt.Printf("%-10s %14d %16.0f\n", r.System, r.KeysSelected, r.QueriesPerS)
	}
	fmt.Println()
}

func runFig15(o experiments.Options) {
	fmt.Println("Figure 15 — scalability: max sustainable throughput vs DOP and snapshot interval")
	fmt.Printf("%-6s %-5s %-10s %18s %20s\n", "nodes", "DOP", "interval", "max events/s", "k events/s per DOP")
	for _, r := range experiments.Fig15(o) {
		fmt.Printf("%-6d %-5d %-10s %18.0f %20.1f\n",
			r.Nodes, r.DOP, r.Interval, r.MaxThroughput, r.NormalizedKEPS)
	}
	fmt.Println()
}

func runQueries(o experiments.Options) {
	fmt.Println("Delivery Hero production queries (§VIII) on live Q-commerce snapshot state")
	for _, r := range experiments.PaperQueries(o) {
		fmt.Printf("--- %s (%s, %d rows) ---\n%s\n%s\n",
			r.Name, r.Latency.Round(time.Microsecond), r.Rows, r.Query, r.Result)
	}
}

func runObs(o experiments.Options) {
	fmt.Println(experiments.Table(
		"Tracing overhead — coordinated-omission-safe source→sink latency with tracing off / 1-in-256 / every record",
		experiments.Obs(o)))
}

func runPushdown(o experiments.Options) {
	fmt.Println(experiments.PushdownTable(
		"Scan pushdown — streaming pipeline (pushdown) vs ship-everything (40K keys, 128 partitions, 3 nodes)",
		experiments.Pushdown(o)))
}

func runWire(o experiments.Options) {
	fmt.Println(experiments.WireTable(
		"Wire — batched transport + binary codec vs legacy per-record/per-key messages (3 nodes, replicated)",
		experiments.Wire(o)))
}

func runIndex(o experiments.Options) {
	fmt.Println(experiments.IndexTable(
		"Secondary indexes — selective reads via index vs full-scan access path, and inline-maintenance write cost (128 partitions, 3 nodes)",
		experiments.Index(o)))
}

func runCkptScale(o experiments.Options) {
	fmt.Println(experiments.CkptScaleTable(
		"Checkpoint scaling — full+sync vs delta+async persistence at 1x/3x/10x state, fixed hot set (3 nodes)",
		experiments.CkptScale(o)))
}

func runSubscribe(o experiments.Options) {
	fmt.Println(experiments.SubscribeTable(
		"Standing queries — 10K subscriptions sharing one arrangement vs 10K polling clients (128 partitions, 3 nodes)",
		experiments.Subscribe(o)))
}
