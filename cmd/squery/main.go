// Command squery runs a demo stream processing job (the Q-commerce
// workload of §VIII) and serves an interactive SQL prompt over its live
// and snapshot state — the "opening the black box" experience end to end.
//
// Usage:
//
//	squery [-nodes 3] [-orders 10000] [-interval 1s] [-persist DIR]
//
// Then type SQL at the prompt:
//
//	squery> SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
//	        JOIN "snapshot_orderstate" USING(partitionKey)
//	        WHERE orderState='PICKED_UP' GROUP BY deliveryZone;
//
// Standing queries: prefix a SELECT with SUBSCRIBE (or use \watch <sql>)
// to stream its result incrementally — one snapshot frame, then deltas as
// operator state changes — until Enter stops the watch:
//
//	squery> SUBSCRIBE SELECT COUNT(*), deliveryZone FROM orderstate
//	        GROUP BY deliveryZone;
//
// Meta-commands: \tables, \snapshots, \explain <sql>, \metrics, \health
// (the pipeline health summary: watermark lag, backpressure, slow
// queries, history sparklines — same renderer as GET /statusz), \watch
// <sql>, \q1..\q4 (the paper's queries), \quit. Prefix any query with
// EXPLAIN ANALYZE for per-stage timings, or query the sys.* tables
// (sys.operators, sys.partitions, sys.checkpoints, sys.queries,
// sys.slow_queries, sys.watermarks, sys.backpressure, sys.history,
// sys.spans, sys.traces, sys.subscriptions, sys.arrangements) for live
// engine telemetry. -metrics prints the full plain-text instrument dump
// on exit. -serve-obs ADDR serves the HTTP observability plane
// (/metrics, /statusz, /tracez, /healthz, /readyz, /subscribe,
// /debug/pprof) while the prompt runs:
//
//	squery -serve-obs 127.0.0.1:8080 &
//	curl http://127.0.0.1:8080/metrics
//	curl http://127.0.0.1:8080/statusz
//	curl -N 'http://127.0.0.1:8080/subscribe?q=SELECT%20COUNT(*)%20FROM%20orderstate'
//
// -chaos-stall VERTEX injects a per-record stall into that vertex's
// stage, so the health plane has something to attribute: watch the stage
// go red in \health, sys.backpressure and sys.watermarks.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"squery"
	"squery/internal/chaos"
	"squery/internal/obshttp"
	"squery/internal/qcommerce"
	"squery/internal/transport"
)

func main() {
	nodes := flag.Int("nodes", 3, "simulated cluster size")
	orders := flag.Int64("orders", 10_000, "unique orders in the workload")
	interval := flag.Duration("interval", time.Second, "checkpoint interval")
	dumpMetrics := flag.Bool("metrics", false, "print the plain-text metrics dump on exit")
	serveObs := flag.String("serve-obs", "", "serve the HTTP observability plane on this address (e.g. 127.0.0.1:8080)")
	wireKind := flag.String("transport", "sim", `inter-node wire: "sim" (in-process) or "tcp" (loopback TCP frames)`)
	persistDir := flag.String("persist", "", "write committed snapshots durably (full base + delta segments) under this directory")
	chaosStall := flag.String("chaos-stall", "", "inject a per-record stall into this vertex's stage (e.g. orderinfo); watch sys.backpressure attribute it")
	chaosStallDelay := flag.Duration("chaos-stall-delay", 20*time.Millisecond, "per-record delay of the -chaos-stall stage")
	flag.Parse()

	cfg := squery.Config{Nodes: *nodes}
	switch *wireKind {
	case "sim":
	case "tcp":
		lb, err := transport.NewLoopback()
		if err != nil {
			fmt.Fprintln(os.Stderr, "transport:", err)
			os.Exit(1)
		}
		cfg.Transport = lb
	default:
		fmt.Fprintf(os.Stderr, "unknown -transport %q (want sim or tcp)\n", *wireKind)
		os.Exit(1)
	}
	eng := squery.New(cfg)
	defer eng.Close()
	if *serveObs != "" {
		srv, addr, err := obshttp.Serve(*serveObs, obshttp.Options{
			Metrics:   eng.Metrics(),
			Tracer:    eng.Tracer(),
			Health:    eng.Health,
			Ready:     eng.Ready,
			Subscribe: eng.HTTPSubscribe,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve-obs:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability plane on http://%s\n", addr)
	}
	dag := qcommerce.DAG(qcommerce.Config{
		Orders:              *orders,
		Rate:                50_000,
		SourceParallelism:   *nodes,
		OperatorParallelism: *nodes * 2,
	}, squery.SinkVertex("sink", *nodes, func(squery.Record) {}))

	spec := squery.JobSpec{
		Name:             "qcommerce",
		State:            squery.StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: *interval,
	}
	if *persistDir != "" {
		// Persisted demos also enable incremental in-memory snapshots so
		// the commit path is O(delta) end to end: pinned phase 1 plus
		// delta segments, visible as persistMode/chainLen/drainUs columns
		// in sys.checkpoints.
		spec.State.Incremental = true
		spec.PersistDir = *persistDir
	}
	if *chaosStall != "" {
		inj := chaos.New(1)
		inj.SetTracer(eng.Tracer())
		inj.Add(chaos.Rule{
			Kind:     chaos.StallStage,
			Vertex:   *chaosStall,
			Instance: chaos.Any,
			Node:     chaos.Any,
			Delay:    *chaosStallDelay,
		})
		spec.Chaos = inj
		fmt.Printf("chaos: stalling stage %q %s per record\n", *chaosStall, *chaosStallDelay)
	}
	job, err := eng.SubmitJob(dag, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "submit:", err)
		os.Exit(1)
	}
	defer job.Stop()
	if *dumpMetrics {
		defer func() { fmt.Print(eng.MetricsDump()) }()
	}

	fmt.Printf("Q-commerce job running on %d nodes (%d orders, checkpoint every %s).\n",
		*nodes, *orders, *interval)
	fmt.Println(`Tables: orderinfo, orderstate, riderlocation (+ snapshot_ variants).`)
	fmt.Println(`Type SQL, or \tables \snapshots \explain <sql> \metrics \health \q1..\q4 \quit.`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("squery> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, op := range job.Operators() {
				fmt.Printf("  %s, snapshot_%s\n", op, op)
			}
		case line == `\metrics`:
			fmt.Print(eng.MetricsDump())
		case line == `\health`:
			obshttp.WriteStatus(os.Stdout, eng.Metrics())
		case line == `\snapshots`:
			fmt.Printf("  latest committed: %d, queryable: %v\n",
				job.LatestSnapshotID(), job.QueryableSnapshots())
		case strings.HasPrefix(line, `\explain `):
			plan, err := eng.Explain(strings.TrimPrefix(line, `\explain `))
			if err != nil {
				fmt.Println("  error:", err)
				continue
			}
			fmt.Print(plan)
		case strings.HasPrefix(strings.ToUpper(line), "SUBSCRIBE"):
			runSubscribe(eng, in, line)
		case strings.HasPrefix(line, `\watch `):
			runSubscribe(eng, in, "SUBSCRIBE "+strings.TrimPrefix(line, `\watch `))
		case strings.HasPrefix(line, `\q`) && len(line) == 3:
			idx := int(line[2] - '1')
			if idx < 0 || idx >= len(qcommerce.Queries) {
				fmt.Println("  no such query; \\q1..\\q4")
				continue
			}
			runQuery(eng, qcommerce.Queries[idx])
		default:
			runQuery(eng, line)
		}
	}
}

// runSubscribe streams a standing query's snapshot + delta frames until
// the user presses Enter (any input line stops the watch and is
// discarded).
func runSubscribe(eng *squery.Engine, in *bufio.Scanner, q string) {
	sub, err := eng.Subscribe(q)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	defer sub.Close()
	fmt.Printf("  watching (id %d, columns %v) — press Enter to stop\n", sub.ID(), sub.Columns())
	go func() {
		for ev := range sub.Events() {
			switch {
			case ev.Err != nil:
				fmt.Printf("  !! standing query failed: %v\n", ev.Err)
			case ev.Snapshot:
				fmt.Printf("  -- snapshot @wm %d (%d rows)\n", ev.Watermark, len(ev.Deltas))
			default:
				fmt.Printf("  -- delta @wm %d\n", ev.Watermark)
			}
			for _, d := range ev.Deltas {
				if d.Delete {
					fmt.Printf("     - %s\n", d.Key)
				} else {
					fmt.Printf("     + %s %v\n", d.Key, d.Vals)
				}
			}
		}
	}()
	in.Scan() // Enter (or EOF) ends the watch
}

func runQuery(eng *squery.Engine, q string) {
	start := time.Now()
	res, err := eng.Query(q)
	if err != nil {
		fmt.Println("  error:", err)
		return
	}
	fmt.Print(res.String())
	fmt.Printf("(%d rows in %s)\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
}
