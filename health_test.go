package squery

import (
	"strings"
	"testing"
	"time"

	"squery/internal/chaos"
)

// healthJob is an endless pipeline for health-plane tests: an unthrottled
// watermarking source into a two-instance stateful stage into a sink. The
// source runs until gate closes.
func healthJob(gate chan struct{}) *DAG {
	src := GeneratorSource("source", 1, 0, func(instance int, seq int64) (Record, bool) {
		select {
		case <-gate:
			return Record{}, false
		default:
		}
		return Record{Key: int(seq % 8), Value: int(seq)}, true
	})
	src.Watermarks = &WatermarkPolicy{Every: 8}
	return NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("average", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "average", EdgePartitioned).
		Connect("average", "sink", EdgePartitioned)
}

// waitRow polls a single-value query until cond holds.
func waitRow(t *testing.T, eng *Engine, q string, cond func(int64) bool, what string) int64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := eng.Query(q)
		if err == nil && len(res.Rows) == 1 {
			if v, ok := res.Rows[0][0].(int64); ok && cond(v) {
				return v
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("%s: %v", what, err)
			}
			t.Fatalf("%s: condition never held (%q -> %v)", what, q, res.Rows)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHealthPlaneAttributesInjectedStall freezes one stage mid-run with a
// chaos StallStage rule and asserts the health plane attributes it: the
// stalled stage reads pressured in sys.backpressure, its watermark freezes
// while its lag grows in sys.watermarks, sys.history has accumulated
// snapshots, and the health queries themselves land in sys.slow_queries
// under an aggressive threshold.
func TestHealthPlaneAttributesInjectedStall(t *testing.T) {
	eng := New(Config{
		Nodes:              2,
		Partitions:         18,
		HistoryInterval:    25 * time.Millisecond,
		HistoryWindow:      10 * time.Second,
		SlowQueryThreshold: time.Nanosecond,
	})
	defer eng.Close()
	inj := chaos.New(7)
	inj.SetTracer(eng.Tracer())
	gate := make(chan struct{})
	job, err := eng.SubmitJob(healthJob(gate), JobSpec{
		Name:            "health",
		State:           StateConfig{Live: true},
		ChannelCapacity: 8,
		Chaos:           inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	defer close(gate)

	// Let the pipeline reach steady state: the operator has processed
	// records and seen at least one watermark.
	waitRow(t, eng, `SELECT MAX(watermarkUs) FROM sys.watermarks WHERE vertex = 'average'`,
		func(v int64) bool { return v > 0 }, "watermark propagation")

	// Freeze the stage: every instance sleeps far longer than the test on
	// its next record, so the inbox backs up and the watermark stops.
	inj.Add(chaos.Rule{
		Kind:     chaos.StallStage,
		Vertex:   "average",
		Instance: chaos.Any,
		Node:     chaos.Any,
		Delay:    30 * time.Second,
	})

	// Backpressure attribution: the stalled stage's inbox fills and its
	// pressure score rises; the upstream source accumulates blocked sends.
	waitRow(t, eng, `SELECT MAX(pressurePermille) FROM sys.backpressure WHERE vertex = 'average'`,
		func(v int64) bool { return v >= 500 }, "pressure on stalled stage")
	waitRow(t, eng, `SELECT SUM(blockedSends) FROM sys.backpressure WHERE vertex = 'source'`,
		func(v int64) bool { return v >= 1 }, "blocked sends upstream of stall")

	// Watermark attribution: frozen watermark, growing lag.
	wm1 := waitRow(t, eng, `SELECT MAX(watermarkUs) FROM sys.watermarks WHERE vertex = 'average'`,
		func(v int64) bool { return v > 0 }, "stalled watermark read")
	lag1 := waitRow(t, eng, `SELECT MAX(lagUs) FROM sys.watermarks WHERE vertex = 'average'`,
		func(v int64) bool { return v > 0 }, "stalled lag read")
	time.Sleep(300 * time.Millisecond)
	wm2 := waitRow(t, eng, `SELECT MAX(watermarkUs) FROM sys.watermarks WHERE vertex = 'average'`,
		func(v int64) bool { return v > 0 }, "stalled watermark re-read")
	lag2 := waitRow(t, eng, `SELECT MAX(lagUs) FROM sys.watermarks WHERE vertex = 'average'`,
		func(v int64) bool { return v > lag1 }, "lag growth")
	if wm2 != wm1 {
		t.Fatalf("watermark moved during stall: %d -> %d", wm1, wm2)
	}
	if lag2-lag1 < 200_000 { // slept 300ms; allow generous scheduling slack
		t.Fatalf("lag grew only %dus over 300ms of stall", lag2-lag1)
	}

	// History: the 25ms retention ticker has captured several snapshots by
	// now, queryable as a time series.
	if v := waitRow(t, eng, `SELECT MAX(snapshot) FROM sys.history`,
		func(v int64) bool { return v >= 1 }, "history snapshots"); v < 1 {
		t.Fatalf("sys.history max snapshot = %d, want >= 1", v)
	}
	waitRow(t, eng, `SELECT COUNT(*) FROM sys.history WHERE metric = 'watermark_lag_us'`,
		func(v int64) bool { return v >= 2 }, "lag series in history")

	// The chaos event fired exactly once (flood suppression) and is
	// attributed to the stalled vertex.
	var stalls int
	for _, ev := range inj.Events() {
		if ev.Kind == chaos.StallStage {
			stalls++
			if ev.Vertex != "average" {
				t.Fatalf("stall event vertex = %q, want average", ev.Vertex)
			}
		}
	}
	if stalls != 1 {
		t.Fatalf("stall events fired = %d, want 1 (first fire only)", stalls)
	}

	// Slow-query accounting: with a 1ns threshold every health query above
	// was mirrored into sys.slow_queries with its resource columns.
	res, err := eng.Query(`SELECT stages FROM sys.slow_queries`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("sys.slow_queries empty under 1ns threshold")
	}
	withStages := 0
	for _, r := range res.Rows {
		if s, _ := r[0].(string); strings.Contains(s, "=") {
			withStages++
		}
	}
	if withStages == 0 {
		t.Fatal("no slow query carries a per-stage wall breakdown")
	}
}

// TestHistoryDisabled verifies the opt-out: with DisableHistory the ring
// stays empty and sys.history returns no rows.
func TestHistoryDisabled(t *testing.T) {
	eng := New(Config{Nodes: 2, Partitions: 18, DisableHistory: true})
	defer eng.Close()
	res, err := eng.Query(`SELECT COUNT(*) FROM sys.history`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n != 0 {
		t.Fatalf("sys.history has %d rows with DisableHistory", n)
	}
}
