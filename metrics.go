package squery

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"squery/internal/cluster"
	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/metrics"
)

// The engine applies the paper's thesis to itself: its own runtime
// telemetry is state, and state is queryable. Every layer records into one
// metrics.Registry — operator instances ("operator" subsystem), the
// checkpoint coordinator ("checkpoint"), the KV store ("kv") and the SQL
// executor ("sql") — and the registry is surfaced as virtual system tables
// (sys.operators, sys.partitions, sys.checkpoints, sys.queries, and the
// health plane: sys.watermarks, sys.backpressure, sys.history,
// sys.slow_queries) that flow through the normal SQL path: they can be
// filtered, joined, aggregated and EXPLAIN ANALYZEd like any state table.

// Metrics returns the engine's registry, or nil when Config.DisableMetrics
// was set. Callers may resolve their own instruments under it.
func (e *Engine) Metrics() *metrics.Registry { return e.reg }

// MetricsDump renders every instrument and event log as plain text — the
// output behind the -metrics flags of cmd/squery and cmd/squery-bench.
func (e *Engine) MetricsDump() string { return e.reg.Dump() }

// registerSystemTables installs the sys.* virtual tables. Each provider
// reads the registry (or the tracer's span ring) at query time, so the
// tables are always live. The metrics-backed tables require a registry,
// the span tables a tracer; either may be disabled independently.
func (e *Engine) registerSystemTables() {
	if e.reg != nil {
		e.cat.RegisterVirtual("sys.operators", e.sysOperators)
		e.cat.RegisterVirtual("sys.partitions", e.sysPartitions)
		e.cat.RegisterVirtual("sys.checkpoints", func() []core.TableRow {
			return eventRows(e.reg.Log("checkpoints", 256))
		})
		e.cat.RegisterVirtual("sys.queries", func() []core.TableRow {
			return eventRows(e.reg.Log("queries", e.lim.QueryLogCapacity))
		})
		e.cat.RegisterVirtual("sys.slow_queries", func() []core.TableRow {
			return eventRows(e.reg.Log("slow_queries", e.lim.SlowQueryLogCapacity))
		})
		e.cat.RegisterVirtual("sys.watermarks", e.sysWatermarks)
		e.cat.RegisterVirtual("sys.backpressure", e.sysBackpressure)
		e.cat.RegisterVirtual("sys.history", e.sysHistory)
	}
	if e.tracer != nil {
		e.cat.RegisterVirtual("sys.spans", e.sysSpans)
		e.cat.RegisterVirtual("sys.traces", e.sysTraces)
	}
	// The transport always exists (simulated or networked), so its
	// accounting is queryable regardless of which planes are disabled.
	e.cat.RegisterVirtual("sys.network", e.sysNetwork)
	// Membership and rebalance visibility read the cluster directly, so
	// they too work with every plane disabled — and, crucially, while a
	// rebalance is still running.
	e.cat.RegisterVirtual("sys.membership", e.sysMembership)
	e.cat.RegisterVirtual("sys.rebalances", e.sysRebalances)
	// Secondary-index accounting also reads the store directly: one row
	// per index with its size and maintenance/lookup tallies.
	e.cat.RegisterVirtual("sys.indexes", e.sysIndexes)
	// Standing-query visibility reads the subscription registry and the
	// arrangement registry directly, so it works with every plane
	// disabled — SUBSCRIBE itself does not depend on metrics.
	e.cat.RegisterVirtual("sys.subscriptions", e.sysSubscriptions)
	e.cat.RegisterVirtual("sys.arrangements", e.sysArrangements)
}

// sysSubscriptions is one row per live subscription: its statement,
// source tables and overload policy, queue occupancy against capacity,
// and the delivery accounting — frames delivered, frames shed on
// overload, resync snapshots issued, and the source-delta watermark the
// standing result has folded in. The lag column is the queue depth: how
// many frames the consumer is behind the standing query.
func (e *Engine) sysSubscriptions() []core.TableRow {
	stats := e.Subscriptions()
	rows := make([]core.TableRow, 0, len(stats))
	for _, s := range stats {
		rows = append(rows, core.TableRow{Key: s.ID, Value: kv.MapRow{
			"subscription": s.ID,
			"query":        s.Query,
			"tables":       strings.Join(s.Tables, ","),
			"policy":       s.Policy.String(),
			"queueCap":     int64(s.QueueCap),
			"lag":          int64(s.Queued),
			"delivered":    int64(s.Delivered),
			"shed":         int64(s.Shed),
			"resyncs":      int64(s.Resyncs),
			"watermark":    int64(s.Watermark),
			"ageUs":        s.Age.Microseconds(),
		}})
	}
	return rows
}

// sysArrangements is one row per shared arrangement: the table it
// maintains, how many standing queries share it, its current row count,
// and its delta pipeline accounting — deltas received from the store's
// tap, deltas applied to the view, and partition resets survived
// (failovers and migrations that forced a re-snapshot).
func (e *Engine) sysArrangements() []core.TableRow {
	infos := e.Arrangements()
	rows := make([]core.TableRow, 0, len(infos))
	for _, a := range infos {
		rows = append(rows, core.TableRow{Key: a.Table, Value: kv.MapRow{
			"table":     a.Table,
			"refs":      int64(a.Refs),
			"rows":      int64(a.Rows),
			"deltasIn":  int64(a.DeltasIn),
			"applied":   int64(a.Applied),
			"resets":    int64(a.Resets),
			"watermark": int64(a.Watermark),
		}})
	}
	return rows
}

// sysIndexes is one row per secondary index: the table and column it
// covers, its structure kind, entry/byte footprint, cumulative inline
// maintenance operations with sampled p50/p99 latency, and how many
// lookups it has served. KV map names equal SQL table names (snapshot
// tables carry the snapshot_ prefix), so rows join the query surface
// directly.
func (e *Engine) sysIndexes() []core.TableRow {
	infos := e.clu.Store().IndexInfos()
	rows := make([]core.TableRow, 0, len(infos))
	for _, ix := range infos {
		rows = append(rows, core.TableRow{Key: ix.Map + "." + ix.Column, Value: kv.MapRow{
			"table":      ix.Map,
			"column":     ix.Column,
			"kind":       ix.Kind,
			"entries":    ix.Entries,
			"bytes":      ix.Bytes,
			"maintOps":   ix.MaintOps,
			"maintP50Us": ix.MaintP50.Microseconds(),
			"maintP99Us": ix.MaintP99.Microseconds(),
			"lookups":    ix.Lookups,
		}})
	}
	return rows
}

// sysMembership is one row per node ever provisioned: its lifecycle state,
// how many partitions it currently owns and backs up, and the partition
// table epoch (identical on every row; stale-epoch writes are fenced
// against it).
func (e *Engine) sysMembership() []core.TableRow {
	epoch := e.clu.Epoch()
	members := e.clu.Members()
	rows := make([]core.TableRow, 0, len(members))
	for _, m := range members {
		rows = append(rows, core.TableRow{Key: m.Node, Value: kv.MapRow{
			"node":       m.Node,
			"state":      m.State.String(),
			"live":       m.State == cluster.NodeLive,
			"partitions": int64(m.Partitions),
			"backups":    int64(m.Backups),
			"epoch":      epoch,
		}})
	}
	return rows
}

// sysRebalances is one row per membership change (join or leave): the
// epochs it spanned, whether it is still running, and its migration
// tallies — move count, aborted moves, entries and bytes shipped, and the
// average/max per-move duration.
func (e *Engine) sysRebalances() []core.TableRow {
	rebs := e.clu.Rebalances()
	rows := make([]core.TableRow, 0, len(rebs))
	for _, r := range rebs {
		var ops, bytes, aborted, backupMoves int64
		var moveTotal, moveMax time.Duration
		for _, mv := range r.Moves {
			ops += int64(mv.Ops)
			bytes += int64(mv.Bytes)
			if mv.Aborted {
				aborted++
			}
			if mv.BackupOnly {
				backupMoves++
			}
			moveTotal += mv.Duration
			if mv.Duration > moveMax {
				moveMax = mv.Duration
			}
		}
		avg := time.Duration(0)
		if n := len(r.Moves); n > 0 {
			avg = moveTotal / time.Duration(n)
		}
		rows = append(rows, core.TableRow{Key: r.ID, Value: kv.MapRow{
			"rebalance":    r.ID,
			"kind":         r.Kind,
			"node":         r.Node,
			"epochBefore":  r.EpochBefore,
			"epochAfter":   r.EpochAfter,
			"running":      r.Running,
			"droppedBump":  r.DroppedBump,
			"aborted":      r.Aborted,
			"moves":        int64(len(r.Moves)),
			"abortedMoves": aborted,
			"backupMoves":  backupMoves,
			"ops":          ops,
			"bytes":        bytes,
			"durationUs":   r.Duration.Microseconds(),
			"avgMoveUs":    avg.Microseconds(),
			"maxMoveUs":    moveMax.Microseconds(),
		}})
	}
	return rows
}

// sysNetwork is the transport's wire accounting: one row with the
// inter-node message, operation and payload-byte totals. The same
// counters back the message-reduction numbers of `squery-bench -exp
// wire`, so the experiment is reproducible from SQL alone.
func (e *Engine) sysNetwork() []core.TableRow {
	st := e.clu.Transport().Stats()
	return []core.TableRow{{Key: "transport", Value: kv.MapRow{
		"transport": "cluster",
		"messages":  int64(st.Messages),
		"ops":       int64(st.Ops),
		"bytes":     int64(st.Bytes),
	}}}
}

// sysOperators is one row per operator instance: routing counters,
// barrier-alignment and state-update latency summaries.
func (e *Engine) sysOperators() []core.TableRow {
	vals := e.reg.Values("operator")
	hists := e.reg.HistogramsIn("operator")
	ids := make(map[string]bool, len(vals))
	for id := range vals {
		ids[id] = true
	}
	for id := range hists {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	rows := make([]core.TableRow, 0, len(sorted))
	for _, id := range sorted {
		v := vals[id]
		h := hists[id]
		vertex, inst := id, -1
		if i := strings.LastIndex(id, "/"); i >= 0 {
			vertex = id[:i]
			inst, _ = strconv.Atoi(id[i+1:])
		}
		rows = append(rows, core.TableRow{Key: id, Value: kv.MapRow{
			"vertex":           vertex,
			"instance":         inst,
			"node":             v["node"],
			"recordsIn":        v["records_in"],
			"recordsOut":       v["records_out"],
			"checkpoints":      v["checkpoints"],
			"barrierWaits":     histCount(h["barrier_wait"]),
			"barrierWaitAvgUs": histMeanUs(h["barrier_wait"]),
			"stateUpdates":     v["state_updates"],
			"stateUpdateAvgUs": histMeanUs(h["state_update"]),
		}})
	}
	return rows
}

// idleAfter is how long without a processed record an operator instance
// must be before sys.watermarks reports it idle. Idleness is judged at
// query time from the last_record_us gauge, so a stalled stage flips to
// idle without any hot-path bookkeeping.
const idleAfter = time.Second

// operatorID splits a per-instance instrument id ("vertex/3") into its
// vertex name and instance number.
func operatorID(id string) (vertex string, instance int) {
	vertex, instance = id, -1
	if i := strings.LastIndex(id, "/"); i >= 0 {
		vertex = id[:i]
		instance, _ = strconv.Atoi(id[i+1:])
	}
	return vertex, instance
}

// sortedOperatorIDs returns the instance ids of the operator subsystem
// that carry the given marker metric, sorted.
func sortedOperatorIDs(vals map[string]map[string]int64, marker string) []string {
	ids := make([]string, 0, len(vals))
	for id, v := range vals {
		if _, ok := v[marker]; ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// sysWatermarks is one row per operator instance with its event-time
// progress: the current watermark, its lag behind the wall clock, when the
// instance last processed (or emitted) a record, and whether it has gone
// idle. The lag column is a derived gauge evaluated at read time, so a
// frozen watermark shows ever-growing lag — the primary stall signal the
// chaos tests assert on.
func (e *Engine) sysWatermarks() []core.TableRow {
	vals := e.reg.Values("operator")
	now := time.Now()
	ids := sortedOperatorIDs(vals, "watermark_us")
	rows := make([]core.TableRow, 0, len(ids))
	for _, id := range ids {
		v := vals[id]
		vertex, inst := operatorID(id)
		last := v["last_record_us"]
		idleUs := int64(0)
		if last > 0 {
			idleUs = now.UnixMicro() - last
		}
		rows = append(rows, core.TableRow{Key: id, Value: kv.MapRow{
			"vertex":       vertex,
			"instance":     inst,
			"node":         v["node"],
			"watermarkUs":  v["watermark_us"],
			"lagUs":        v["watermark_lag_us"],
			"lastRecordUs": last,
			"idleUs":       idleUs,
			"idle":         last == 0 || idleUs >= idleAfter.Microseconds(),
		}})
	}
	return rows
}

// sysBackpressure is one row per operator instance with its queueing
// health: inbox depth against capacity, cumulative blocked sends with the
// time they cost, the lifetime share of wall time spent blocked, and the
// combined pressure score — max(inbox fill, blocked-send share) in
// permille, so both a stalled stage (full inbox) and the upstream stage it
// throttles (blocked sends) read as pressured.
func (e *Engine) sysBackpressure() []core.TableRow {
	vals := e.reg.Values("operator")
	ids := sortedOperatorIDs(vals, "pressure_permille")
	rows := make([]core.TableRow, 0, len(ids))
	for _, id := range ids {
		v := vals[id]
		vertex, inst := operatorID(id)
		depth, capacity := v["inbox_depth"], v["inbox_capacity"]
		fill := int64(0)
		if capacity > 0 {
			fill = depth * 1000 / capacity
		}
		rows = append(rows, core.TableRow{Key: id, Value: kv.MapRow{
			"vertex":           vertex,
			"instance":         inst,
			"node":             v["node"],
			"inboxDepth":       depth,
			"inboxCapacity":    capacity,
			"fillPermille":     fill,
			"blockedSends":     v["blocked_sends"],
			"blockedUs":        v["blocked_send_ns"] / 1000,
			"blockedPermille":  v["send_blocked_permille"],
			"pressurePermille": v["pressure_permille"],
		}})
	}
	return rows
}

// sysHistory exposes the registry's retained metric snapshots as a time
// series: one row per (snapshot, instrument), oldest snapshot first, with
// a per-second rate computed against the same instrument in the previous
// snapshot (counters only; gauges and histogram counts carry rate 0).
// `WHERE metric = 'records_in'` recovers one instrument's series;
// `WHERE snapshot = N` recovers one capture.
func (e *Engine) sysHistory() []core.TableRow {
	snaps := e.reg.History()
	var rows []core.TableRow
	var prev map[metrics.InstrumentKey]int64
	var prevAt time.Time
	for i, s := range snaps {
		cur := make(map[metrics.InstrumentKey]int64, len(s.Points))
		for _, p := range s.Points {
			cur[p.Key] = p.Value
			rate := 0.0
			if p.Kind == "counter" && prev != nil {
				if pv, ok := prev[p.Key]; ok {
					rate = metrics.Rate(pv, p.Value, prevAt, s.At)
				}
			}
			rows = append(rows, core.TableRow{Key: strconv.Itoa(i) + "/" + p.Key.String(), Value: kv.MapRow{
				"snapshot":   int64(i),
				"atUnixUs":   s.At.UnixMicro(),
				"subsystem":  p.Key.Subsystem,
				"id":         p.Key.ID,
				"metric":     p.Key.Metric,
				"kind":       p.Kind,
				"value":      p.Value,
				"ratePerSec": rate,
			}})
		}
		prev, prevAt = cur, s.At
	}
	return rows
}

// sysPartitions is one row per state partition: KV operation counts and
// lock contention from the store, scan activity from the SQL executor.
func (e *Engine) sysPartitions() []core.TableRow {
	kvVals := e.reg.Values("kv")
	sqlVals := e.reg.Values("sql")
	sqlHists := e.reg.HistogramsIn("sql")
	assign := e.clu.Store().Assignment()
	nparts := e.clu.Store().Partitioner().Count()
	rows := make([]core.TableRow, 0, nparts)
	for p := 0; p < nparts; p++ {
		id := "p" + strconv.Itoa(p)
		v := kvVals[id]
		sv := sqlVals[id]
		rows = append(rows, core.TableRow{Key: p, Value: kv.MapRow{
			"partition":    p,
			"node":         assign.Owner(p),
			"gets":         v["gets"],
			"sets":         v["sets"],
			"deletes":      v["deletes"],
			"scans":        v["scans"],
			"lockWaits":    v["lock_waits"],
			"lockWaitUs":   v["lock_wait_ns"] / 1000,
			"sqlScans":     sv["scans"],
			"sqlScanRows":  sv["rows"],
			"sqlScanAvgUs": histMeanUs(sqlHists[id]["scan"]),
		}})
	}
	return rows
}

// eventRows adapts an event log's retained events as table rows, oldest
// first, with the ring sequence number as both key and "seq" column. An
// event's "ssid" field (checkpoint events carry one) is mirrored into the
// row's SSID so the ssid pseudo-column — which shadows value fields —
// reports the event's snapshot id instead of the virtual table's zero.
func eventRows(l *metrics.EventLog) []core.TableRow {
	events := l.Events()
	rows := make([]core.TableRow, 0, len(events))
	for _, ev := range events {
		m := make(kv.MapRow, len(ev.Fields)+1)
		for k, v := range ev.Fields {
			m[k] = v
		}
		m["seq"] = int64(ev.Seq)
		ssid, _ := m["ssid"].(int64)
		rows = append(rows, core.TableRow{Key: int64(ev.Seq), SSID: ssid, Value: m})
	}
	return rows
}

func histCount(h *metrics.Histogram) int64 {
	if h == nil {
		return 0
	}
	return int64(h.Count())
}

func histMeanUs(h *metrics.Histogram) int64 {
	if h == nil {
		return 0
	}
	return h.Mean().Microseconds()
}
