package squery

import (
	"fmt"
	"strings"

	"squery/internal/core"
	"squery/internal/kv"
	sqlpkg "squery/internal/sql"
)

// IsolationLevel classifies what a query may observe (§VII of the paper).
type IsolationLevel int

// Isolation levels offered by S-QUERY.
const (
	// ReadUncommitted: live-state queries. Updates are uncommitted until
	// the next checkpoint; a failure rolls the system back, so a live
	// read may have observed state that "never happened" (Figure 5).
	ReadUncommitted IsolationLevel = iota
	// ReadCommitted: live-state queries under the assumption of no
	// failures — key-level locking protects each read, and with no
	// rollback event every observed update is effectively durable.
	ReadCommitted
	// SnapshotIsolation: queries against a committed snapshot; the
	// snapshot id is resolved atomically, so results never mix versions.
	SnapshotIsolation
	// Serializable: snapshot queries additionally enjoy serializability
	// because state updates are serialized by design — parallel
	// single-threaded operators own disjoint key partitions, so no write
	// conflicts exist to violate a serial order (§VII).
	Serializable
)

// String implements fmt.Stringer.
func (l IsolationLevel) String() string {
	switch l {
	case ReadUncommitted:
		return "READ UNCOMMITTED"
	case ReadCommitted:
		return "READ COMMITTED"
	case SnapshotIsolation:
		return "SNAPSHOT ISOLATION"
	case Serializable:
		return "SERIALIZABLE"
	default:
		return fmt.Sprintf("IsolationLevel(%d)", int(l))
	}
}

// Query executes a SQL SELECT against the state tables of all running
// jobs. Live tables are addressed by operator name, snapshot tables as
// snapshot_<operator>; snapshot tables default to the latest committed
// snapshot unless the WHERE clause pins `ssid = <n>` (§V.C).
func (e *Engine) Query(query string) (*Result, error) {
	return e.ex.Query(query)
}

// Fault-tolerant query surface: options, policies and typed errors for
// querying a partially failed cluster, re-exported from the SQL engine.
type (
	// QueryOptions tunes per-partition timeouts and the degradation
	// policy of one query execution.
	QueryOptions = sqlpkg.ExecOpts
	// QueryPolicy selects how a query handles an unreachable or stalled
	// partition.
	QueryPolicy = sqlpkg.Policy
	// Degradation reports one partition served from a snapshot replica
	// instead of the requested table (see Result.Degraded).
	Degradation = sqlpkg.Degradation
	// PartitionUnavailableError is the typed failure of a guarded query.
	PartitionUnavailableError = sqlpkg.PartitionUnavailableError
)

// Degradation policies for QueryWithOptions.
const (
	// PolicyNone runs the query unguarded (the default).
	PolicyNone = sqlpkg.PolicyNone
	// PolicyRetry retries a faulted partition with backoff until the
	// retry deadline, then fails with PartitionUnavailableError.
	PolicyRetry = sqlpkg.PolicyRetry
	// PolicyFallback serves a faulted partition from the latest committed
	// snapshot's backup replica, reporting the isolation downgrade in
	// Result.Degraded. Requires Config.ReplicateState.
	PolicyFallback = sqlpkg.PolicyFallback
	// PolicyFailFast fails the query immediately on the first faulted
	// partition.
	PolicyFailFast = sqlpkg.PolicyFailFast
)

// QueryWithOptions executes a SQL SELECT with per-partition timeouts and
// a caller-chosen degradation policy, so a stalled or unreachable
// partition cannot hang the query (§V.A meets partial failures). With
// PolicyFallback the result may mix live rows with rows from the latest
// committed snapshot; Result.Degraded lists exactly which partitions were
// downgraded and to which snapshot id.
func (e *Engine) QueryWithOptions(query string, opts QueryOptions) (*Result, error) {
	return e.ex.QueryWithOptions(query, opts)
}

// Explain returns a human-readable execution plan for a query without
// running it: resolved tables (live/snapshot and the snapshot id that
// would be used), the join strategy (co-partitioned vs global hash), the
// residual filter, and the post-processing stages.
func (e *Engine) Explain(query string) (string, error) {
	return e.ex.Explain(query)
}

// QueryIsolated executes a query after verifying it can actually deliver
// the requested isolation level: snapshot isolation and serializability
// require every table in the query to be a snapshot table — live state
// can never provide them (§VII).
func (e *Engine) QueryIsolated(query string, level IsolationLevel) (*Result, error) {
	if level == SnapshotIsolation || level == Serializable {
		tables, err := tablesOf(query)
		if err != nil {
			return nil, err
		}
		for _, t := range tables {
			if !strings.HasPrefix(strings.ToLower(t), "snapshot_") {
				return nil, fmt.Errorf(
					"squery: %s requires snapshot tables only, but query reads live table %q", level, t)
			}
		}
	}
	return e.ex.Query(query)
}

// tablesOf extracts the table names a query references.
func tablesOf(query string) ([]string, error) {
	return sqlpkg.Tables(query)
}

// ObjectView is the direct object interface to one operator's state — the
// low-latency path Figure 14 benchmarks against TSpoon. Reads go straight
// to the KV store under key-level locking, without SQL parsing or
// planning.
type ObjectView struct {
	engine   *Engine
	operator string
}

// Object returns the direct object interface for an operator.
func (e *Engine) Object(operator string) ObjectView {
	return ObjectView{engine: e, operator: operator}
}

// GetLive fetches the live state objects for the given keys (read
// uncommitted). Missing keys yield nil entries, preserving order.
func (v ObjectView) GetLive(keys ...Key) []any {
	view := v.engine.clu.ClientView()
	return view.GetAll(core.LiveMapName(v.operator), keys)
}

// GetSnapshot fetches the state objects for the given keys as of snapshot
// ssid (0 = latest committed), providing snapshot isolation. Missing keys
// yield nil entries.
func (v ObjectView) GetSnapshot(ssid int64, keys ...Key) ([]any, error) {
	tab, err := v.engine.cat.Table("snapshot_" + v.operator)
	if err != nil {
		return nil, err
	}
	target, err := tab.ResolveSSID(ssid)
	if err != nil {
		return nil, err
	}
	view := v.engine.clu.ClientView()
	raw := view.GetAll(core.SnapshotMapName(v.operator), keys)
	out := make([]any, len(raw))
	for i, c := range raw {
		if c == nil {
			continue
		}
		if ver, ok := c.(*core.Chain).At(target); ok {
			out[i] = ver.Value
		}
	}
	return out, nil
}

// ScanLive streams every live state entry of the operator.
func (v ObjectView) ScanLive(fn func(key Key, value any) bool) {
	view := v.engine.clu.ClientView()
	view.Scan(core.LiveMapName(v.operator), func(e kv.Entry) bool {
		return fn(e.Key, e.Value)
	})
}

// ScanSnapshot streams every state entry of the operator as of snapshot
// ssid (0 = latest committed).
func (v ObjectView) ScanSnapshot(ssid int64, fn func(key Key, value any, versionSSID int64) bool) error {
	tab, err := v.engine.cat.Table("snapshot_" + v.operator)
	if err != nil {
		return err
	}
	target, err := tab.ResolveSSID(ssid)
	if err != nil {
		return err
	}
	tab.Scan(target, func(r core.TableRow) bool {
		return fn(r.Key, r.Raw, r.SSID)
	})
	return nil
}
