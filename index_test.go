package squery

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

// zoneStateFn keys each record's state row by record key with a zone
// column derived from it — five zones, 1/5 selectivity each.
func zoneStateFn(_ any, rec Record) (any, []Record) {
	k := rec.Key.(int)
	return map[string]any{
		"zone":   fmt.Sprintf("z%d", k%5),
		"amount": int64(rec.Value.(int)),
	}, []Record{rec}
}

func sortedResult(t *testing.T, res *Result, err error) string {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprint(r)
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

// TestIndexSurvivesRebalance: a secondary index keeps answering correctly
// — in parity with the full scan — across an online JoinNode and
// LeaveNode, whose migrations replace partition contents wholesale and
// must rebuild the indexes on the flipped partitions. The epoch-fencing
// backstop must never fire.
func TestIndexSurvivesRebalance(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true})
	defer eng.Close()

	const records = 200
	recs := make([]Record, records)
	for i := range recs {
		recs[i] = Record{Key: i, Value: i + 1}
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(SliceSource("source", 1, recs)).
		AddVertex(StatefulMapVertex("zones", 2, zoneStateFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "zones", EdgePartitioned).
		Connect("zones", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "zones", State: StateConfig{Live: true, Unbatched: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	if err := eng.CreateIndex("zones", "zone", IndexHash); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sunk.Load() >= records }, "records sunk")
	job.Wait()

	const q = `SELECT partitionKey, amount FROM zones WHERE zone = 'z1'`
	parity := func(stage string, reschedules int) {
		t.Helper()
		// A membership change reschedules the job, which replays the
		// source; wait for the reschedule to land and the state to settle
		// so the A and B queries read the same table.
		waitFor(t, func() bool { return job.Reschedules() >= int64(reschedules) }, stage+": reschedule")
		waitFor(t, func() bool {
			res, err := eng.Query(`SELECT COUNT(*) FROM zones`)
			return err == nil && len(res.Rows) == 1 && res.Rows[0][0] == int64(records)
		}, stage+": state to settle")
		onRes, err := eng.QueryWithOptions(q, QueryOptions{})
		on := sortedResult(t, onRes, err)
		offRes, err := eng.QueryWithOptions(q, QueryOptions{DisableIndexes: true})
		off := sortedResult(t, offRes, err)
		if on != off {
			t.Fatalf("%s: index/full-scan mismatch:\n index %s\n full  %s", stage, on, off)
		}
		if len(onRes.Rows) != records/5 {
			t.Fatalf("%s: rows = %d, want %d", stage, len(onRes.Rows), records/5)
		}
		// Parity alone would also pass if the index silently vanished and
		// both sides full-scanned (a reschedule once dropped the map and
		// its index definitions with it). The planner must still *choose*
		// the index, which requires it to exist and estimate cheaper.
		explRes, err := eng.Query(`EXPLAIN ` + q)
		expl := sortedResult(t, explRes, err)
		if want := "access index eq(zone = z1)"; !strings.Contains(expl, want) {
			t.Fatalf("%s: EXPLAIN missing %q — index lost:\n%s", stage, want, expl)
		}
	}
	parity("before rebalance", 0)

	node, err := eng.JoinNode()
	if err != nil {
		t.Fatal(err)
	}
	parity("after join", 1)
	if err := eng.LeaveNode(node); err != nil {
		t.Fatal(err)
	}
	parity("after leave", 2)

	if st := eng.FenceStats(); st.Forced != 0 {
		t.Fatalf("liveness backstop fired: %d forced writes", st.Forced)
	}
}

// TestSysIndexesTable: sys.indexes reports every index with its kind,
// footprint and maintenance/lookup accounting, both via SQL and via the
// programmatic twin.
func TestSysIndexesTable(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	defer eng.Close()

	recs := make([]Record, 100)
	for i := range recs {
		recs[i] = Record{Key: i, Value: i + 1}
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(SliceSource("source", 1, recs)).
		AddVertex(StatefulMapVertex("zix", 2, zoneStateFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "zix", EdgePartitioned).
		Connect("zix", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "zix", State: StateConfig{Live: true, Unbatched: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	if err := eng.CreateIndex("zix", "zone", IndexHash); err != nil {
		t.Fatal(err)
	}
	if err := eng.CreateIndex("zix", "amount", IndexBTree); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sunk.Load() >= 100 }, "records sunk")
	job.Wait()

	// Serve a few lookups so the counter moves.
	for i := 0; i < 3; i++ {
		if _, err := eng.Query(`SELECT partitionKey FROM zix WHERE zone = 'z0'`); err != nil {
			t.Fatal(err)
		}
	}

	infos := eng.IndexInfos()
	if len(infos) != 2 {
		t.Fatalf("IndexInfos = %d entries, want 2", len(infos))
	}
	byCol := map[string]IndexInfo{}
	for _, ix := range infos {
		if ix.Map != "zix" {
			t.Fatalf("index on unexpected map %q", ix.Map)
		}
		byCol[ix.Column] = ix
	}
	zone, amount := byCol["zone"], byCol["amount"]
	if zone.Kind != "hash" || amount.Kind != "btree" {
		t.Fatalf("kinds = %q/%q, want hash/btree", zone.Kind, amount.Kind)
	}
	if zone.Entries != 100 || amount.Entries != 100 {
		t.Fatalf("entries = %d/%d, want 100 each", zone.Entries, amount.Entries)
	}
	if zone.MaintOps == 0 || zone.Bytes == 0 {
		t.Fatalf("zone index accounting empty: maintOps=%d bytes=%d", zone.MaintOps, zone.Bytes)
	}
	if zone.Lookups == 0 {
		t.Fatal("zone index served no lookups despite indexed queries")
	}

	// The same accounting is queryable through plain SQL.
	res, err := eng.Query(`SELECT kind, entries, lookups FROM "sys.indexes" WHERE column = 'zone'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("sys.indexes rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0] != "hash" || res.Rows[0][1].(int64) != 100 {
		t.Fatalf("sys.indexes row = %v", res.Rows[0])
	}
	if res.Rows[0][2].(int64) == 0 {
		t.Fatal("sys.indexes reports zero lookups")
	}
}
