package squery

import (
	"encoding/gob"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// counterState is the running count + total of Figure 2's averaging
// operator.
type counterState struct {
	Count int
	Total int
}

func init() { gob.Register(counterState{}) }

func averageFn(state any, rec Record) (any, []Record) {
	s := counterState{}
	if state != nil {
		s = state.(counterState)
	}
	s.Count++
	s.Total += rec.Value.(int)
	return s, []Record{{Key: rec.Key, Value: float64(s.Total) / float64(s.Count), EventTime: rec.EventTime}}
}

// averagingJob builds Figure 2's pipeline: source → average → sink.
func averagingJob(recs []Record) *DAG {
	return NewDAG().
		AddVertex(SliceSource("source", 1, recs)).
		AddVertex(StatefulMapVertex("average", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "average", EdgePartitioned).
		Connect("average", "sink", EdgePartitioned)
}

func TestEngineEndToEndSQL(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	recs := []Record{
		{Key: 1, Value: 10}, {Key: 1, Value: 30}, {Key: 2, Value: 5},
		{Key: 1, Value: 5}, {Key: 2, Value: 15},
	}
	job, err := eng.SubmitJob(averagingJob(recs), JobSpec{
		Name:  "avg",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()

	// Figure 4's live query: SELECT count, total FROM average WHERE key=1.
	res, err := eng.Query(`SELECT count, total FROM average WHERE partitionKey = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != 3 || res.Rows[0][1] != 45 {
		t.Fatalf("live rows = %v, want [[3 45]]", res.Rows)
	}

	// No snapshot yet: snapshot queries must fail.
	if _, err := eng.Query(`SELECT count FROM snapshot_average`); err == nil {
		t.Fatal("snapshot query before first checkpoint succeeded")
	}
	if err := job.CheckpointNow(); err == nil {
		t.Fatal("checkpoint of drained job should fail (all instances retired)")
	}
}

func TestEngineSnapshotQueryAndVersions(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	gate := make(chan struct{})
	src := GeneratorSource("source", 1, 0, func(instance int, seq int64) (Record, bool) {
		if seq >= 40 {
			select {
			case <-gate:
				return Record{}, false
			default:
			}
			// Hold the stream open without emitting.
			time.Sleep(100 * time.Microsecond)
			return Record{Key: int(seq % 4), Value: 0}, true
		}
		return Record{Key: int(seq % 4), Value: int(seq)}, true
	})
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("average", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "average", EdgePartitioned).
		Connect("average", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "avg", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(gate); job.Stop() }()

	waitFor(t, func() bool { return job.SourceRecords() >= 40 }, "records flowing")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if job.LatestSnapshotID() != 1 {
		t.Fatalf("latest snapshot = %d", job.LatestSnapshotID())
	}
	if got := job.QueryableSnapshots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("queryable = %v", got)
	}

	res, err := eng.Query(`SELECT COUNT(*), SUM(count) FROM snapshot_average`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(4) {
		t.Fatalf("snapshot keys = %v, want 4", res.Rows[0][0])
	}
	// Counts at the checkpoint might include the padding records; at
	// least the initial 40 must be there.
	if res.Rows[0][1].(int64) < 40 {
		t.Fatalf("snapshot total count = %v, want >= 40", res.Rows[0][1])
	}
}

// TestDirtyReadOnLiveState reproduces Figure 5: a live query observes an
// uncommitted update, the job fails, and after recovery the same query
// shows the rolled-back (older) value — the earlier read was dirty.
func TestDirtyReadOnLiveState(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	cs := &controlledSource{}
	dag := NewDAG().
		AddVertex(&Vertex{Name: "source", Kind: KindSource, Parallelism: 1,
			NewSource: func(int, int) SourceInstance { return cs }}).
		AddVertex(StatefulMapVertex("count", 1, func(state any, rec Record) (any, []Record) {
			n := 0
			if state != nil {
				n = state.(int)
			}
			n++
			return n, nil
		})).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "count", EdgePartitioned).
		Connect("count", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "counts", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	// Figure 5a: state reaches 4, checkpoint with id 1.
	waitFor(t, func() bool {
		v := eng.Object("count").GetLive("counter")
		return v[0] == 4
	}, "counter to reach 4")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	// Figure 5b: one more record; live query returns 5 — a dirty read.
	cs.gate.Store(true)
	waitFor(t, func() bool {
		return eng.Object("count").GetLive("counter")[0] == 5
	}, "counter to reach 5")

	// Figure 5c: failure; recovery restores snapshot 1; live state is 4.
	// Close the gate again so the replayed record stalls and the rolled-
	// back value is observable.
	cs.gate.Store(false)
	if _, err := job.InjectFailure(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Object("count").GetLive("counter")[0]; got != 4 {
		t.Fatalf("live counter after recovery = %v, want 4 (rollback)", got)
	}

	// Releasing the gate replays the lost record exactly once: the
	// counter converges back to 5, not 6.
	cs.gate.Store(true)
	waitFor(t, func() bool {
		return eng.Object("count").GetLive("counter")[0] == 5
	}, "counter to re-reach 5 after replay")

	// Figure 6: the snapshot query pinned to id 1 returns 4 throughout.
	snap, err := eng.Object("count").GetSnapshot(1, "counter")
	if err != nil {
		t.Fatal(err)
	}
	if snap[0] != 4 {
		t.Fatalf("snapshot counter = %v, want 4", snap[0])
	}
}

// controlledSource emits 4 records, idles until its gate opens, emits one
// more, then idles forever. Rewinding replays deterministically: offsets
// 0-3 are pre-gate records, 4 is the post-gate record. The same instance
// survives recovery (the factory returns it again), so the test can open
// and close the gate across the failure.
type controlledSource struct {
	gate atomic.Bool
	pos  int64
}

func (c *controlledSource) Next() (Record, SourceStatus) {
	if c.pos < 4 {
		c.pos++
		return Record{Key: "counter", Value: 1}, SourceOK
	}
	if c.pos == 4 {
		if c.gate.Load() {
			c.pos++
			return Record{Key: "counter", Value: 1}, SourceOK
		}
		return Record{}, SourceIdle
	}
	return Record{}, SourceIdle
}

func (c *controlledSource) Offset() int64  { return c.pos }
func (c *controlledSource) Rewind(o int64) { c.pos = o }

func TestQueryIsolatedEnforcesSnapshotTables(t *testing.T) {
	eng := New(Config{Nodes: 1, Partitions: 8})
	job, err := eng.SubmitJob(averagingJob([]Record{{Key: 1, Value: 1}}), JobSpec{
		Name: "j", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()

	// Live query at serializable isolation is impossible.
	if _, err := eng.QueryIsolated(`SELECT count FROM average`, Serializable); err == nil {
		t.Fatal("serializable live query accepted")
	}
	if _, err := eng.QueryIsolated(`SELECT count FROM average`, SnapshotIsolation); err == nil {
		t.Fatal("snapshot-isolation live query accepted")
	}
	// Read-uncommitted live query is fine.
	if _, err := eng.QueryIsolated(`SELECT count FROM average`, ReadUncommitted); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryIsolated(`SELECT count FROM average`, ReadCommitted); err != nil {
		t.Fatal(err)
	}
	for _, l := range []IsolationLevel{ReadUncommitted, ReadCommitted, SnapshotIsolation, Serializable} {
		if l.String() == "" || strings.HasPrefix(l.String(), "IsolationLevel(") {
			t.Errorf("missing String() for %d", int(l))
		}
	}
}

func TestObjectInterfaceMissingKeys(t *testing.T) {
	eng := New(Config{Nodes: 1, Partitions: 8})
	job, err := eng.SubmitJob(averagingJob([]Record{{Key: 1, Value: 10}}), JobSpec{
		Name: "j", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()

	got := eng.Object("average").GetLive(1, 999)
	if got[0] == nil || got[1] != nil {
		t.Fatalf("GetLive = %v", got)
	}
	// Snapshot access before any checkpoint errors.
	if _, err := eng.Object("average").GetSnapshot(0, 1); err == nil {
		t.Fatal("GetSnapshot before checkpoint succeeded")
	}
	if err := eng.Object("average").ScanSnapshot(0, func(Key, any, int64) bool { return true }); err == nil {
		t.Fatal("ScanSnapshot before checkpoint succeeded")
	}
	// Unknown operator errors.
	if _, err := eng.Object("nosuch").GetSnapshot(0, 1); err == nil {
		t.Fatal("snapshot access to unknown operator succeeded")
	}
}

func TestScanLiveVisitsAllKeys(t *testing.T) {
	eng := New(Config{Nodes: 2, Partitions: 16})
	recs := make([]Record, 50)
	for i := range recs {
		recs[i] = Record{Key: i % 10, Value: i}
	}
	job, err := eng.SubmitJob(averagingJob(recs), JobSpec{
		Name: "j", State: StateConfig{Live: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()

	seen := 0
	eng.Object("average").ScanLive(func(k Key, v any) bool {
		seen++
		if v.(counterState).Count != 5 {
			t.Errorf("key %v count = %d, want 5", k, v.(counterState).Count)
		}
		return true
	})
	if seen != 10 {
		t.Fatalf("scanned %d keys, want 10", seen)
	}
}

func TestDuplicateOperatorNamesAcrossJobsRejected(t *testing.T) {
	eng := New(Config{Nodes: 1, Partitions: 8})
	j1, err := eng.SubmitJob(averagingJob([]Record{{Key: 1, Value: 1}}), JobSpec{
		Name: "a", State: StateConfig{Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer j1.Stop()
	if _, err := eng.SubmitJob(averagingJob(nil), JobSpec{Name: "b", State: StateConfig{Snapshots: true}}); err == nil {
		t.Fatal("duplicate operator name across jobs accepted")
	}
	// After stopping the first job its tables free up.
	j1.Stop()
	j2, err := eng.SubmitJob(averagingJob(nil), JobSpec{Name: "c", State: StateConfig{Snapshots: true}})
	if err != nil {
		t.Fatalf("resubmission after stop failed: %v", err)
	}
	j2.Stop()
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
