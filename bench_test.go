package squery

// One benchmark per table/figure of the paper's evaluation (§IX), backed
// by internal/experiments in Quick mode, plus micro-benchmarks of the hot
// paths (state update, snapshot write, chain resolution, SQL execution).
//
// The figure benchmarks are macro-benchmarks: an "op" is one full
// experiment run; the interesting output is the custom metrics
// (p50/p99.99 latency in milliseconds, queries/s, events/s), which mirror
// the paper's axes. Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"squery/internal/experiments"
	"squery/internal/metrics"
	"squery/internal/qcommerce"
)

var quick = experiments.Options{Quick: true}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// reportSeries exposes each series' median and extreme-percentile latency
// as benchmark metrics.
func reportSeries(b *testing.B, series []experiments.Series) {
	b.Helper()
	for _, s := range series {
		b.ReportMetric(ms(s.Summary.Quantiles[0.5]), sanitizeMetric(s.Label)+"_p50_ms")
		b.ReportMetric(ms(s.Summary.Quantiles[0.9999]), sanitizeMetric(s.Label)+"_p9999_ms")
	}
}

func sanitizeMetric(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		switch {
		case r == ' ' || r == '%':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig8LatencyByStateConfig — Figure 8: source→sink latency of
// live+snap / live / snap / Jet on NEXMark query 6.
func BenchmarkFig8LatencyByStateConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig8(quick))
	}
}

// BenchmarkFig9LatencyByLoad — Figure 9: snap vs Jet at 1×/5×/9× load.
func BenchmarkFig9LatencyByLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig9(quick))
	}
}

// BenchmarkFig10Snapshot2PC — Figure 10: snapshot 2PC latency S-Query vs
// Jet across key counts.
func BenchmarkFig10Snapshot2PC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig10(quick))
	}
}

// BenchmarkFig11SnapshotUnderQueries — Figure 11: 2PC latency with vs
// without concurrent Query-1 threads.
func BenchmarkFig11SnapshotUnderQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig11(quick))
	}
}

// BenchmarkFig12IncrementalSnapshots — Figure 12: incremental vs full
// snapshot cost by delta ratio.
func BenchmarkFig12IncrementalSnapshots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig12(quick))
	}
}

// BenchmarkFig13QueryLatency — Figure 13: Query-1 latency on incremental
// vs full snapshots.
func BenchmarkFig13QueryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportSeries(b, experiments.Fig13(quick))
	}
}

// BenchmarkFig14DirectObject — Figure 14: direct-object query throughput
// vs keys selected, S-Query vs TSpoon.
func BenchmarkFig14DirectObject(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Fig14(quick) {
			b.ReportMetric(r.QueriesPerS, fmt.Sprintf("%s_%dkeys_qps", sanitizeMetric(r.System), r.KeysSelected))
		}
	}
}

// BenchmarkFig15Scalability — Figure 15: max sustainable throughput vs
// DOP and snapshot interval.
func BenchmarkFig15Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Fig15(quick) {
			b.ReportMetric(r.MaxThroughput, fmt.Sprintf("dop%d_%s_events_per_s", r.DOP, r.Interval))
		}
	}
}

// BenchmarkPaperQueries — the four Delivery Hero queries of §VIII end to
// end (Table-level reproduction of the query workload).
func BenchmarkPaperQueries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for qi, r := range experiments.PaperQueries(quick) {
			b.ReportMetric(ms(r.Latency), fmt.Sprintf("query%d_ms", qi+1))
		}
	}
}

// --- Micro-benchmarks of the hot paths -------------------------------

// benchEngine builds a small engine with populated Q-commerce state.
func benchEngine(b *testing.B, keys int, state StateConfig) (*Engine, *Job) {
	b.Helper()
	eng := New(Config{Nodes: 3})
	cfg := qcommerce.Config{
		Orders: int64(keys),
		// Modest steady load: the queries being measured should not
		// fight a saturated pipeline for CPU.
		Rate:                5_000,
		SourceParallelism:   3,
		OperatorParallelism: 3,
	}
	dag := qcommerce.DAG(cfg, SinkVertex("sink", 3, func(Record) {}))
	job, err := eng.SubmitJob(dag, JobSpec{Name: "bench", State: state})
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.SourceRecords() < uint64(keys*3) {
		if time.Now().After(deadline) {
			b.Fatal("bench engine did not warm up")
		}
		time.Sleep(time.Millisecond)
	}
	if err := job.CheckpointNow(); err != nil {
		b.Fatal(err)
	}
	return eng, job
}

// BenchmarkDirectObjectGet measures the direct-object single-key read —
// the row of Figure 14's leftmost point.
func BenchmarkDirectObjectGet(b *testing.B) {
	eng, job := benchEngine(b, 10_000, StateConfig{Live: true, Snapshots: true})
	defer job.Stop()
	view := eng.Object("riderlocation")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view.GetLive(qcommerce.RiderKey(int64(i % 1000)))
	}
}

// BenchmarkSQLPointQuery measures a single-key SQL SELECT on live state.
func BenchmarkSQLPointQuery(b *testing.B) {
	eng, job := benchEngine(b, 10_000, StateConfig{Live: true, Snapshots: true})
	defer job.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(`SELECT orderState FROM orderstate WHERE partitionKey = 'order-17'`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLJoinAggregate measures the paper's Query 1 (join + group
// by) over the snapshot state.
func BenchmarkSQLJoinAggregate(b *testing.B) {
	eng, job := benchEngine(b, 10_000, StateConfig{Live: true, Snapshots: true})
	defer job.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(qcommerce.Query1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse isolates the parser.
func BenchmarkSQLParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tablesOf(qcommerce.Query1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramRecord isolates the metrology hot path shared by all
// latency measurements.
func BenchmarkHistogramRecord(b *testing.B) {
	h := metrics.NewHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}
