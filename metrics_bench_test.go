package squery

// Overhead of the always-on metrics layer, measured at the two places it
// touches per-record work: SQL reads (kv get counters, per-partition scan
// instruments, query event log) and stream ingest (operator record
// counters, state-update latency histograms, kv set counters). Each
// benchmark runs the identical workload with the registry enabled and
// with Config.DisableMetrics, which nils every instrument at
// construction time. EXPERIMENTS.md records the measured delta against
// the 5% budget. Run with:
//
//	go test -bench BenchmarkMetricsOverhead -benchtime 2s

import (
	"testing"
	"time"

	"squery/internal/qcommerce"
)

var metricsModes = []struct {
	name    string
	disable bool
}{
	{"on", false},
	{"off", true},
}

func overheadEngine(b *testing.B, disable bool, rate float64) (*Engine, *Job) {
	b.Helper()
	eng := New(Config{Nodes: 3, DisableMetrics: disable})
	dag := qcommerce.DAG(qcommerce.Config{
		Orders:              2_000,
		Rate:                rate,
		SourceParallelism:   3,
		OperatorParallelism: 3,
	}, SinkVertex("sink", 3, func(Record) {}))
	job, err := eng.SubmitJob(dag, JobSpec{
		Name:  "overhead",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.SourceRecords() < 6_000 {
		if time.Now().After(deadline) {
			b.Fatal("overhead engine did not warm up")
		}
		time.Sleep(time.Millisecond)
	}
	if err := job.CheckpointNow(); err != nil {
		b.Fatal(err)
	}
	return eng, job
}

// BenchmarkMetricsOverheadQuery: one op is one pruned point query through
// the full SQL path (parse, prune, kv get, project, query event log).
func BenchmarkMetricsOverheadQuery(b *testing.B) {
	for _, m := range metricsModes {
		b.Run(m.name, func(b *testing.B) {
			eng, job := overheadEngine(b, m.disable, 500)
			defer job.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(`SELECT orderState FROM orderstate WHERE partitionKey = 'order-17'`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetricsOverheadScan: one op is one full-table aggregate scan —
// the path that touches every partition's instruments.
func BenchmarkMetricsOverheadScan(b *testing.B) {
	for _, m := range metricsModes {
		b.Run(m.name, func(b *testing.B) {
			eng, job := overheadEngine(b, m.disable, 500)
			defer job.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(`SELECT COUNT(*) FROM "snapshot_orderstate"`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetricsOverheadIngest: one op is a fixed unthrottled run of
// the Q-commerce pipeline; the custom events/s metric is the comparison
// axis (per-record instrument cost shows up as lost throughput).
func BenchmarkMetricsOverheadIngest(b *testing.B) {
	for _, m := range metricsModes {
		b.Run(m.name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				eng := New(Config{Nodes: 3, DisableMetrics: m.disable})
				dag := qcommerce.DAG(qcommerce.Config{
					Orders:              10_000,
					Rate:                0, // unthrottled
					SourceParallelism:   3,
					OperatorParallelism: 3,
				}, SinkVertex("sink", 3, func(Record) {}))
				job, err := eng.SubmitJob(dag, JobSpec{
					Name:  "overhead",
					State: StateConfig{Live: true, Snapshots: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				start := time.Now()
				before := job.SourceRecords()
				time.Sleep(500 * time.Millisecond)
				emitted := job.SourceRecords() - before
				total += float64(emitted) / time.Since(start).Seconds()
				job.Stop()
				eng.Close()
			}
			b.ReportMetric(total/float64(b.N), "events/s")
			b.ReportMetric(0, "ns/op")
		})
	}
}
