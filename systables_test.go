package squery

import (
	"strings"
	"testing"
	"time"
)

// openAveragingJob builds the averaging pipeline over a source that emits
// 40 records and then idles (holding the stream open) until gate closes,
// so checkpoints can run against a live job.
func openAveragingJob(gate chan struct{}) *DAG {
	src := GeneratorSource("source", 1, 0, func(instance int, seq int64) (Record, bool) {
		if seq >= 40 {
			select {
			case <-gate:
				return Record{}, false
			default:
			}
			time.Sleep(100 * time.Microsecond)
			return Record{Key: int(seq % 4), Value: 0}, true
		}
		return Record{Key: int(seq % 4), Value: int(seq)}, true
	})
	return NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("average", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) {})).
		Connect("source", "average", EdgePartitioned).
		Connect("average", "sink", EdgePartitioned)
}

// TestSystemTablesReturnLiveMetrics drives a job through records and a
// checkpoint, then reads the engine's own telemetry back through the
// normal SQL path via every sys.* table.
func TestSystemTablesReturnLiveMetrics(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	gate := make(chan struct{})
	job, err := eng.SubmitJob(openAveragingJob(gate), JobSpec{
		Name:  "avg",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	// Let the 40 real records drain into the operator before checkpointing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := eng.Query(`SELECT SUM(count) FROM average`)
		if err == nil && len(res.Rows) == 1 {
			if n, ok := res.Rows[0][0].(int64); ok && n >= 40 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("operator state did not reach 40 records in time")
		}
		time.Sleep(time.Millisecond)
	}
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	close(gate)

	// sys.operators: the averaging operator's two instances saw every
	// record the source emitted (at least the 40 real ones).
	res, err := eng.Query(`SELECT SUM(recordsIn), SUM(checkpoints) FROM sys.operators WHERE vertex = 'average'`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n < 40 {
		t.Fatalf("sys.operators recordsIn for average = %d, want >= 40", n)
	}
	if c := res.Rows[0][1].(int64); c < 2 {
		t.Fatalf("sys.operators checkpoints for average = %d, want >= 2 (one per instance)", c)
	}

	// sys.partitions: state updates hit the KV store; at least one
	// partition recorded sets, and the pseudo-columns behave (one row per
	// partition).
	res, err = eng.Query(`SELECT COUNT(*) FROM sys.partitions`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n != 27 {
		t.Fatalf("sys.partitions rows = %d, want 27", n)
	}
	res, err = eng.Query(`SELECT COUNT(*), SUM(sets) FROM sys.partitions WHERE sets > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n == 0 {
		t.Fatal("no partition recorded any KV sets")
	}

	// sys.checkpoints: the manual checkpoint committed and is visible as
	// an event row.
	res, err = eng.Query(`SELECT job, ssid FROM sys.checkpoints WHERE outcome = 'committed'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 1 {
		t.Fatal("sys.checkpoints has no committed row after CheckpointNow")
	}
	if res.Rows[0][0] != "avg" {
		t.Fatalf("sys.checkpoints job = %v, want avg", res.Rows[0][0])
	}
	// The ssid pseudo-column must carry the event's snapshot id, not the
	// virtual table's zero.
	if ssid, ok := res.Rows[0][1].(int64); !ok || ssid < 1 {
		t.Fatalf("sys.checkpoints ssid = %v, want committed id >= 1", res.Rows[0][1])
	}

	// sys.queries: the queries above were themselves logged.
	res, err = eng.Query(`SELECT COUNT(*) FROM sys.queries`)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n < 3 {
		t.Fatalf("sys.queries rows = %d, want >= 3", n)
	}

	// The plain-text dump carries the same instruments.
	dump := eng.MetricsDump()
	for _, want := range []string{
		"operator/average/0/records_in",
		"checkpoint/avg/commits",
		"log checkpoints",
		"log queries",
	} {
		if !strings.Contains(dump, want) {
			t.Fatalf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}

// TestDisableMetrics verifies the no-op mode: no registry, no sys.*
// tables, and the dump says so.
func TestDisableMetrics(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, DisableMetrics: true})
	job, err := eng.SubmitJob(averagingJob([]Record{{Key: 1, Value: 10}}), JobSpec{
		Name:  "avg",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()
	if eng.Metrics() != nil {
		t.Fatal("Metrics() should be nil with DisableMetrics")
	}
	if _, err := eng.Query(`SELECT COUNT(*) FROM sys.partitions`); err == nil {
		t.Fatal("sys.partitions should be unknown with DisableMetrics")
	}
	if got := eng.MetricsDump(); got != "(metrics disabled)\n" {
		t.Fatalf("MetricsDump = %q", got)
	}
	// Queries still work without any instrumentation.
	if _, err := eng.Query(`SELECT count FROM average WHERE partitionKey = 1`); err != nil {
		t.Fatal(err)
	}
}
