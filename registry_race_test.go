package squery

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"squery/internal/metrics"
)

// TestRegistryConcurrentReadersAndWriters hammers one registry from many
// writer goroutines — creating and bumping instruments, appending events —
// while readers continuously take snapshots (Points, Values, Dump) and a
// separate set of goroutines scans sys.partitions through the full SQL
// path of a live engine sharing the same registry. Run under -race this
// is the regression wall for every lock in the metrics layer.
func TestRegistryConcurrentReadersAndWriters(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 16})
	reg := eng.Metrics()
	if reg == nil {
		t.Fatal("engine registry is nil")
	}

	const (
		writers    = 8
		readers    = 4
		sqlReaders = 3
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: mix of hot-path instrument reuse and fresh-instrument
	// creation, so the map-grow path races against readers too.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hot := reg.Counter("race", fmt.Sprintf("w%d", w), "hits")
			hist := reg.Histogram("race", fmt.Sprintf("w%d", w), "lat")
			log := reg.Log("race-events", 64)
			for i := 0; ; i++ {
				// Check stop at the bottom so every writer records at
				// least once even if it is scheduled after close(stop).
				hot.Inc()
				hist.Record(time.Duration(i%1000) * time.Microsecond)
				reg.Gauge("race", fmt.Sprintf("w%d/%d", w, i%17), "g").Set(int64(i))
				if i%32 == 0 {
					log.Append(map[string]any{"writer": w, "i": i})
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}

	// Snapshot readers: every read API, continuously.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = reg.Points()
				_ = reg.Values("race")
				_ = reg.HistogramsIn("race")
				_ = reg.Dump()
				_ = reg.Log("race-events", 64).Events()
			}
		}()
	}

	// SQL readers: the system tables read the same registry through the
	// executor's scan machinery.
	errs := make(chan error, sqlReaders)
	for r := 0; r < sqlReaders; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Query(`SELECT COUNT(*), SUM(sets) FROM sys.partitions`); err != nil {
					errs <- err
					return
				}
				if _, err := eng.Query(`SELECT COUNT(*) FROM sys.operators`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("concurrent sys.* query failed: %v", err)
	default:
	}

	// Sanity: the writers' counters are all visible and self-consistent.
	vals := reg.Values("race")
	for w := 0; w < writers; w++ {
		if vals[fmt.Sprintf("w%d", w)]["hits"] == 0 {
			t.Fatalf("writer %d recorded no hits", w)
		}
	}
}

// TestRegistrySnapshotIsolation checks that a Points() snapshot taken
// mid-write is internally consistent: instruments never go backwards
// between two snapshots.
func TestRegistrySnapshotIsolation(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.Counter("iso", "a", "n")
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
			}
		}
	}()
	var last int64
	for i := 0; i < 1000; i++ {
		v := reg.Values("iso")["a"]["n"]
		if v < last {
			t.Fatalf("counter went backwards: %d -> %d", last, v)
		}
		last = v
	}
	close(stop)
	<-done
}
