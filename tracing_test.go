package squery

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// traceTestEngine boots an engine tracing every record and drives the
// averaging job through 40 records and one committed checkpoint.
func traceTestEngine(t *testing.T) (*Engine, *Job, chan struct{}) {
	t.Helper()
	eng := New(Config{Nodes: 3, Partitions: 27, TraceSampleEvery: 1})
	gate := make(chan struct{})
	job, err := eng.SubmitJob(openAveragingJob(gate), JobSpec{
		Name:  "avg",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := eng.Query(`SELECT SUM(count) FROM average`)
		if err == nil && len(res.Rows) == 1 {
			if n, ok := res.Rows[0][0].(int64); ok && n >= 40 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("operator state did not reach 40 records in time")
		}
		time.Sleep(time.Millisecond)
	}
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	return eng, job, gate
}

// count runs a COUNT(*) query and returns the number.
func count(t *testing.T, eng *Engine, q string) int64 {
	t.Helper()
	res, err := eng.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	n, ok := res.Rows[0][0].(int64)
	if !ok {
		t.Fatalf("%s returned %v", q, res.Rows[0][0])
	}
	return n
}

// TestSysSpansQueryable reads record, checkpoint and query spans back
// through the normal SQL path, including the ssid join with
// sys.checkpoints the README documents.
func TestSysSpansQueryable(t *testing.T) {
	eng, job, gate := traceTestEngine(t)
	defer job.Stop()
	defer close(gate)

	// Record lineage: every record traced source → average hop → sink hop.
	if n := count(t, eng, `SELECT COUNT(*) FROM sys.spans WHERE kind = 'record' AND name = 'source'`); n < 40 {
		t.Fatalf("source spans = %d, want >= 40", n)
	}
	for _, vertex := range []string{"average", "sink"} {
		q := fmt.Sprintf(`SELECT COUNT(*) FROM sys.spans WHERE name = 'hop' AND vertex = '%s'`, vertex)
		if n := count(t, eng, q); n < 40 {
			t.Fatalf("hop spans at %s = %d, want >= 40", vertex, n)
		}
	}

	// Checkpoint 2PC: the committed checkpoint's trace has per-worker
	// alignment children, the async pin/drain pair of phase 1, and both
	// phase children, addressable by ssid.
	for _, name := range []string{"checkpoint", "barrier_inject", "align", "pin", "drain", "drain_wait", "phase1", "phase2"} {
		q := fmt.Sprintf(`SELECT COUNT(*) FROM sys.spans WHERE kind = 'checkpoint' AND name = '%s' AND ssid >= 1`, name)
		if n := count(t, eng, q); n < 1 {
			t.Fatalf("no %q span for the committed checkpoint", name)
		}
	}

	// The ssid column joins with sys.checkpoints like any state table.
	joined := count(t, eng,
		`SELECT COUNT(*) FROM sys.spans JOIN sys.checkpoints USING(ssid) WHERE name = 'phase1' AND outcome = 'committed'`)
	if joined < 1 {
		t.Fatalf("sys.spans ⋈ sys.checkpoints on ssid returned %d rows, want >= 1", joined)
	}

	// Query tracing: the queries above produced query traces with
	// per-stage children, and sys.queries links to them via traceId.
	if n := count(t, eng, `SELECT COUNT(*) FROM sys.spans WHERE kind = 'query' AND name = 'query'`); n < 1 {
		t.Fatal("no query root spans")
	}
	if n := count(t, eng, `SELECT COUNT(*) FROM sys.spans WHERE kind = 'query' AND parentId > 0`); n < 1 {
		t.Fatal("no per-stage query child spans")
	}
	if n := count(t, eng, `SELECT COUNT(*) FROM sys.queries WHERE traceId > 0`); n < 1 {
		t.Fatal("sys.queries rows do not link to traces")
	}

	// sys.traces aggregates: at least one record trace and the checkpoint
	// trace, with spans counted.
	if n := count(t, eng, `SELECT COUNT(*) FROM sys.traces WHERE kind = 'record' AND spans >= 3`); n < 40 {
		t.Fatalf("aggregated record traces = %d, want >= 40", n)
	}
	if n := count(t, eng, `SELECT COUNT(*) FROM sys.traces WHERE kind = 'checkpoint' AND ssid >= 1`); n < 1 {
		t.Fatal("no aggregated checkpoint trace")
	}
}

// TestHealthAndReadyProbes: Health flips to an error once the job stops;
// Ready additionally demands a committed snapshot for auto-checkpointing
// jobs.
func TestHealthAndReadyProbes(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27})
	gate := make(chan struct{})
	job, err := eng.SubmitJob(openAveragingJob(gate), JobSpec{
		Name:             "avg",
		State:            StateConfig{Live: true, Snapshots: true},
		SnapshotInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Health(); err != nil {
		t.Fatalf("Health with a running job: %v", err)
	}
	// Ready converges once the first snapshot commits.
	deadline := time.Now().Add(5 * time.Second)
	for eng.Ready() != nil {
		if time.Now().After(deadline) {
			t.Fatalf("Ready never converged: %v", eng.Ready())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	job.Stop()
	if err := eng.Health(); err == nil {
		t.Fatal("Health must report the stopped job")
	}
	if err := eng.Ready(); err == nil {
		t.Fatal("Ready must fail when unhealthy")
	}
}

// TestDisableTracing: the no-op mode — nil tracer, no sys.spans tables,
// jobs and queries unaffected.
func TestDisableTracing(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, DisableTracing: true})
	if eng.Tracer() != nil {
		t.Fatal("Tracer() should be nil with DisableTracing")
	}
	job, err := eng.SubmitJob(averagingJob([]Record{{Key: 1, Value: 10}}), JobSpec{
		Name:  "avg",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	job.Wait()
	if _, err := eng.Query(`SELECT COUNT(*) FROM sys.spans`); err == nil {
		t.Fatal("sys.spans should be unknown with DisableTracing")
	}
	if _, err := eng.Query(`SELECT count FROM average WHERE partitionKey = 1`); err != nil {
		t.Fatal(err)
	}
}

// TestSysSpansScanRace hammers the span ring from both sides — the job's
// workers emitting spans for every record while goroutines scan
// sys.spans/sys.traces through SQL — meaningful under -race.
func TestSysSpansScanRace(t *testing.T) {
	eng := New(Config{Nodes: 3, Partitions: 27, TraceSampleEvery: 1, TraceCapacity: 512})
	gate := make(chan struct{})
	job, err := eng.SubmitJob(openAveragingJob(gate), JobSpec{
		Name:  "avg",
		State: StateConfig{Live: true, Snapshots: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := `SELECT COUNT(*) FROM sys.spans`
			if i%2 == 1 {
				q = `SELECT COUNT(*) FROM sys.traces`
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Query(q); err != nil {
					panic(err)
				}
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(gate)
	if eng.Tracer().Len() == 0 {
		t.Fatal("no spans recorded during the race window")
	}
}
