package squery

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"squery/internal/dataflow"
	"squery/internal/trace"
	"squery/internal/transport"
)

// gatedParitySource emits a fixed record slice, then idles — keeping the
// stream open so barriers still flow — until the gate closes.
type gatedParitySource struct {
	recs []Record
	pos  int64
	gate chan struct{}
}

func (s *gatedParitySource) Next() (Record, SourceStatus) {
	if int(s.pos) < len(s.recs) {
		r := s.recs[s.pos]
		s.pos++
		return r, SourceOK
	}
	select {
	case <-s.gate:
		return Record{}, SourceDone
	default:
		return Record{}, SourceIdle
	}
}
func (s *gatedParitySource) Offset() int64  { return s.pos }
func (s *gatedParitySource) Rewind(o int64) { s.pos = o }

// parityObservation is everything the parity test compares between the
// simulated and the loopback-TCP transport.
type parityObservation struct {
	live       string
	snapshot   string
	partitions string
	spans      map[string]int
	ops        uint64
	bytes      uint64
	messages   uint64

	fenceRejects int64 // failover parity only
}

// runParityWorkload drives an identical finite workload over the given
// transport and returns the observable outcomes: query results, the
// sys.partitions operation accounting, span counts by kind/name, and the
// transport's op/byte accounting.
func runParityWorkload(t *testing.T, tr transport.Transport) parityObservation {
	t.Helper()
	const records = 300
	eng := New(Config{Nodes: 3, Partitions: 27, TraceSampleEvery: 1, Transport: tr})
	defer eng.Close()

	recs := make([]Record, records)
	for i := range recs {
		recs[i] = Record{Key: i % 10, Value: i%7 + 1}
	}
	gate := make(chan struct{})
	src := &Vertex{
		Name:        "source",
		Kind:        KindSource,
		Parallelism: 1,
		NewSource: func(int, int) dataflow.SourceInstance {
			return &gatedParitySource{recs: recs, gate: gate}
		},
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("parityavg", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "parityavg", EdgePartitioned).
		Connect("parityavg", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "parity", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		job.Stop()
	}()
	waitFor(t, func() bool { return sunk.Load() == records }, "records sunk")
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	var o parityObservation
	o.live = mustQuery(t, eng, `SELECT count, total FROM parityavg WHERE partitionKey = 1`)
	o.snapshot = mustQuery(t, eng, `SELECT COUNT(*), SUM(count), SUM(total) FROM snapshot_parityavg`)
	o.partitions = mustQuery(t, eng,
		`SELECT partition, node, gets, sets, deletes, scans, sqlScans, sqlScanRows FROM sys.partitions`)

	// Span counts by kind/name through the sys table, net spans excluded:
	// their count depends on how record-batches happened to coalesce,
	// which is timing, not semantics.
	o.spans = make(map[string]int)
	res, err := eng.Query(`SELECT kind, name FROM sys.spans`)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		kind, _ := row[0].(string)
		if kind == trace.KindNet {
			continue
		}
		o.spans[fmt.Sprintf("%v/%v", row[0], row[1])]++
	}

	st := eng.Transport().Stats()
	o.ops, o.bytes, o.messages = st.Ops, st.Bytes, st.Messages
	close(gate)
	job.Wait()
	return o
}

func mustQuery(t *testing.T, eng *Engine, q string) string {
	t.Helper()
	res, err := eng.Query(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = fmt.Sprint(r)
	}
	sort.Strings(rows)
	return fmt.Sprint(rows)
}

// runFailoverParityWorkload drives the parity workload with replicated
// state, checkpoints, kills node 1 (backup promotion), checkpoints again —
// the second 2PC writes through fenced views holding the pre-failover
// table, so every snapshot write group touching a promoted partition is
// rejected and retried against the new owner. It returns the observables
// the failover parity test compares.
func runFailoverParityWorkload(t *testing.T, tr transport.Transport) parityObservation {
	t.Helper()
	const records = 300
	eng := New(Config{Nodes: 3, Partitions: 27, ReplicateState: true, Transport: tr})
	defer eng.Close()

	recs := make([]Record, records)
	for i := range recs {
		recs[i] = Record{Key: i % 10, Value: i%7 + 1}
	}
	gate := make(chan struct{})
	src := &Vertex{
		Name:        "source",
		Kind:        KindSource,
		Parallelism: 1,
		NewSource: func(int, int) dataflow.SourceInstance {
			return &gatedParitySource{recs: recs, gate: gate}
		},
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("failavg", 2, averageFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "failavg", EdgePartitioned).
		Connect("failavg", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{Name: "failparity", State: StateConfig{Live: true, Snapshots: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	waitFor(t, func() bool { return sunk.Load() == records }, "records sunk")
	// Checkpoint 1 flushes every mirror batch, so the failover below finds
	// the workers quiescent — what makes the fencing tally deterministic.
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if err := eng.FailNode(1); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 2: snapshot writes carry the stale fence.
	if err := job.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	var o parityObservation
	o.live = mustQuery(t, eng, `SELECT count, total FROM failavg WHERE partitionKey = 1`)
	o.snapshot = mustQuery(t, eng, `SELECT COUNT(*), SUM(count), SUM(total) FROM snapshot_failavg`)
	o.partitions = mustQuery(t, eng,
		`SELECT partition, node, sets, deletes FROM sys.partitions`)
	st := eng.Transport().Stats()
	o.ops, o.bytes, o.messages = st.Ops, st.Bytes, st.Messages
	fence := eng.FenceStats()
	if fence.Forced != 0 {
		t.Fatalf("liveness backstop fired: %d forced writes", fence.Forced)
	}
	o.fenceRejects = fence.Rejects
	close(gate)
	job.Wait()
	return o
}

// TestTransportFailoverParity: a node failure with backup promotion — and
// the epoch-fenced snapshot writes that follow it — behaves identically
// over the simulated transport and over loopback TCP: same query results,
// same post-promotion ownership in sys.partitions, same transport op/byte
// accounting, same number of fencing rejections.
func TestTransportFailoverParity(t *testing.T) {
	sim := runFailoverParityWorkload(t, nil)
	lb, err := transport.NewLoopback()
	if err != nil {
		t.Fatal(err)
	}
	tcp := runFailoverParityWorkload(t, lb)

	if sim.live != tcp.live {
		t.Errorf("live query diverged:\n sim: %s\n tcp: %s", sim.live, tcp.live)
	}
	if sim.snapshot != tcp.snapshot {
		t.Errorf("snapshot query diverged:\n sim: %s\n tcp: %s", sim.snapshot, tcp.snapshot)
	}
	if sim.partitions != tcp.partitions {
		t.Errorf("sys.partitions accounting diverged:\n sim: %s\n tcp: %s", sim.partitions, tcp.partitions)
	}
	if sim.ops != tcp.ops || sim.bytes != tcp.bytes {
		t.Errorf("transport accounting diverged: sim ops=%d bytes=%d, tcp ops=%d bytes=%d",
			sim.ops, sim.bytes, tcp.ops, tcp.bytes)
	}
	if sim.fenceRejects != tcp.fenceRejects {
		t.Errorf("fencing diverged: sim %d rejects, tcp %d rejects", sim.fenceRejects, tcp.fenceRejects)
	}
	if sim.fenceRejects == 0 {
		t.Error("failover caused no fencing rejections — stale snapshot writes went unfenced")
	}
}

// TestTransportParity proves the transport seam is real: the same
// workload over the in-process simulated transport and over loopback TCP
// produces identical query results, identical sys.partitions operation
// accounting, identical span counts (net spans aside), and identical
// transport op/byte accounting. Only message grouping — a function of
// flush timing — may differ.
func TestTransportParity(t *testing.T) {
	sim := runParityWorkload(t, nil)
	lb, err := transport.NewLoopback()
	if err != nil {
		t.Fatal(err)
	}
	tcp := runParityWorkload(t, lb)

	if sim.live != tcp.live {
		t.Errorf("live query diverged:\n sim: %s\n tcp: %s", sim.live, tcp.live)
	}
	if sim.snapshot != tcp.snapshot {
		t.Errorf("snapshot query diverged:\n sim: %s\n tcp: %s", sim.snapshot, tcp.snapshot)
	}
	if sim.partitions != tcp.partitions {
		t.Errorf("sys.partitions accounting diverged:\n sim: %s\n tcp: %s", sim.partitions, tcp.partitions)
	}
	if len(sim.spans) == 0 {
		t.Error("no spans recorded")
	}
	for k, n := range sim.spans {
		if tcp.spans[k] != n {
			t.Errorf("span count %s: sim %d, tcp %d", k, n, tcp.spans[k])
		}
	}
	for k, n := range tcp.spans {
		if _, ok := sim.spans[k]; !ok {
			t.Errorf("span %s (%d) only on tcp", k, n)
		}
	}
	if sim.ops != tcp.ops || sim.bytes != tcp.bytes {
		t.Errorf("transport accounting diverged: sim ops=%d bytes=%d, tcp ops=%d bytes=%d",
			sim.ops, sim.bytes, tcp.ops, tcp.bytes)
	}
	if sim.messages == 0 || tcp.messages == 0 {
		t.Errorf("expected inter-node messages on both transports (sim %d, tcp %d)", sim.messages, tcp.messages)
	}
}

// phasedParitySource emits records up to an externally advanced limit,
// idling in between — so the test can quiesce, checkpoint, then release
// the next phase, building a durable delta chain with known contents.
type phasedParitySource struct {
	recs  []Record
	pos   int64
	limit *atomic.Int64
	done  chan struct{}
}

func (s *phasedParitySource) Next() (Record, SourceStatus) {
	if int(s.pos) < len(s.recs) && s.pos < s.limit.Load() {
		r := s.recs[s.pos]
		s.pos++
		return r, SourceOK
	}
	if int(s.pos) >= len(s.recs) {
		select {
		case <-s.done:
			return Record{}, SourceDone
		default:
		}
	}
	return Record{}, SourceIdle
}
func (s *phasedParitySource) Offset() int64  { return s.pos }
func (s *phasedParitySource) Rewind(o int64) { s.pos = o }

// tallyFn counts per key; a negative value deletes the key's state, so
// delta segments carry tombstones, not just upserts.
func tallyFn(state any, rec Record) (any, []Record) {
	out := []Record{{Key: rec.Key, Value: rec.Value}}
	if rec.Value.(int) < 0 {
		return nil, out
	}
	s := counterState{}
	if state != nil {
		s = state.(counterState)
	}
	s.Count++
	s.Total += rec.Value.(int)
	return s, out
}

// runArchiveWorkload drives a three-phase workload (inserts; updates +
// deletes; re-insert + updates) over the given transport, checkpointing
// at each quiescent phase boundary so the persisted store holds a base
// segment plus a delta chain (or all-full segments under pol.FullOnly).
// It then cold-starts a fresh engine from the directory and returns the
// restored snapshot table, row per key.
func runArchiveWorkload(t *testing.T, tr transport.Transport, dir string, pol PersistPolicy) string {
	t.Helper()
	const keys = 20
	var recs []Record
	for i := 0; i < 2*keys; i++ {
		recs = append(recs, Record{Key: i % keys, Value: i%5 + 1})
	}
	phase1 := len(recs)
	for _, k := range []int{0, 5, 11} {
		recs = append(recs, Record{Key: k, Value: 10})
	}
	recs = append(recs, Record{Key: 3, Value: -1}, Record{Key: 7, Value: -1})
	phase2 := len(recs)
	recs = append(recs, Record{Key: 3, Value: 2}, Record{Key: 12, Value: 4}, Record{Key: 19, Value: 6})

	eng := New(Config{Nodes: 3, Partitions: 27, Transport: tr})
	defer eng.Close()
	var limit atomic.Int64
	done := make(chan struct{})
	src := &Vertex{
		Name:        "source",
		Kind:        KindSource,
		Parallelism: 1,
		NewSource: func(int, int) dataflow.SourceInstance {
			return &phasedParitySource{recs: recs, limit: &limit, done: done}
		},
	}
	var sunk atomic.Int64
	dag := NewDAG().
		AddVertex(src).
		AddVertex(StatefulMapVertex("incrstate", 2, tallyFn)).
		AddVertex(SinkVertex("sink", 1, func(Record) { sunk.Add(1) })).
		Connect("source", "incrstate", EdgePartitioned).
		Connect("incrstate", "sink", EdgePartitioned)
	job, err := eng.SubmitJob(dag, JobSpec{
		Name:       "incr-recovery",
		State:      StateConfig{Live: true, Snapshots: true, Incremental: true},
		PersistDir: dir,
		Persist:    pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	for _, boundary := range []int{phase1, phase2, len(recs)} {
		limit.Store(int64(boundary))
		want := int64(boundary)
		waitFor(t, func() bool { return sunk.Load() == want }, "phase records sunk")
		if err := job.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	job.Wait()
	job.Stop()
	eng.Close()

	// Cold start: a fresh engine restores from disk alone, replaying the
	// base + delta chain (or reading the full segment under FullOnly).
	eng2 := New(Config{Nodes: 3, Partitions: 27})
	defer eng2.Close()
	if _, _, err := eng2.OpenArchive(dir); err != nil {
		t.Fatal(err)
	}
	return mustQuery(t, eng2, `SELECT partitionKey, count, total FROM snapshot_incrstate`)
}

// countSegments counts persisted segment files with the given suffix.
func countSegments(t *testing.T, dir, suffix string) int {
	t.Helper()
	n := 0
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range sub {
			if strings.HasSuffix(f.Name(), suffix) && !strings.HasSuffix(f.Name(), ".tmp") {
				n++
			}
		}
	}
	return n
}

// TestIncrementalRecoveryParity: restoring from a base + delta chain is
// byte-equivalent to restoring from full snapshots — for the identical
// workload (updates, deletes, re-inserts) run over both the simulated
// transport and loopback TCP. The incremental runs must actually
// exercise the delta path; the FullOnly runs must not.
func TestIncrementalRecoveryParity(t *testing.T) {
	dirs := map[string]string{}
	results := map[string]string{}
	for _, mode := range []struct {
		name string
		tcp  bool
		pol  PersistPolicy
	}{
		{name: "sim-delta"},
		{name: "sim-full", pol: PersistPolicy{FullOnly: true}},
		{name: "tcp-delta", tcp: true},
		{name: "tcp-full", tcp: true, pol: PersistPolicy{FullOnly: true}},
	} {
		var tr transport.Transport
		if mode.tcp {
			lb, err := transport.NewLoopback()
			if err != nil {
				t.Fatal(err)
			}
			tr = lb
		}
		dir := t.TempDir()
		dirs[mode.name] = dir
		results[mode.name] = runArchiveWorkload(t, tr, dir, mode.pol)
	}

	// Deletes must be visible: 20 keys inserted, 2 deleted, 1 re-inserted
	// → 19 rows.
	if got := strings.Count(results["sim-delta"], "]"); got != 19+1 { // rows + outer bracket
		t.Errorf("restored table has %d rows, want 19:\n%s", got-1, results["sim-delta"])
	}
	// The headline property: chain replay ≡ full restore, on both wires.
	if results["sim-delta"] != results["sim-full"] {
		t.Errorf("sim: incremental restore diverged from full:\n delta: %s\n full:  %s",
			results["sim-delta"], results["sim-full"])
	}
	if results["tcp-delta"] != results["tcp-full"] {
		t.Errorf("tcp: incremental restore diverged from full:\n delta: %s\n full:  %s",
			results["tcp-delta"], results["tcp-full"])
	}
	if results["sim-delta"] != results["tcp-delta"] {
		t.Errorf("restore diverged across transports:\n sim: %s\n tcp: %s",
			results["sim-delta"], results["tcp-delta"])
	}
	// The delta path was really on trial: delta runs persisted .dseg
	// chains, FullOnly runs none.
	for _, name := range []string{"sim-delta", "tcp-delta"} {
		if n := countSegments(t, dirs[name], ".dseg"); n == 0 {
			t.Errorf("%s wrote no delta segments", name)
		}
	}
	for _, name := range []string{"sim-full", "tcp-full"} {
		if n := countSegments(t, dirs[name], ".dseg"); n != 0 {
			t.Errorf("%s wrote %d delta segments, want 0", name, countSegments(t, dirs[name], ".dseg"))
		}
	}
}
