package squery

// Ablation benchmarks for the design decisions DESIGN.md calls out:
//
//   - co-partitioned per-partition joins vs a global hash join (the §II
//     co-location optimisation);
//   - per-update live-state mirroring cost (the price of the live table);
//   - version-chain resolution cost as incremental chains grow (the
//     differential-read overhead behind Figure 13);
//   - blob vs per-key queryable snapshot writes (the delta behind
//     Figures 8 and 10).

import (
	"fmt"
	"testing"

	"squery/internal/core"
	"squery/internal/kv"
	"squery/internal/partition"
	"squery/internal/qcommerce"
)

// BenchmarkJoinCoPartitioned measures the paper's Query 3 using the
// partition-wise join (USING(partitionKey) routes through the
// co-partitioned plan).
func BenchmarkJoinCoPartitioned(b *testing.B) {
	eng, job := benchEngine(b, 10_000, StateConfig{Live: true, Snapshots: true})
	defer job.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(qcommerce.Query3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinGlobalHash measures the same join forced through the
// general ON-clause plan (global build + probe), quantifying what
// co-partitioning saves.
func BenchmarkJoinGlobalHash(b *testing.B) {
	eng, job := benchEngine(b, 10_000, StateConfig{Live: true, Snapshots: true})
	defer job.Stop()
	q := `SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo" AS a JOIN "snapshot_orderstate" AS b ON a.partitionKey = b.partitionKey WHERE (orderState='VENDOR_ACCEPTED') GROUP BY deliveryZone`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveMirroringUpdate measures a state update with live-state
// mirroring enabled vs BenchmarkBareUpdate without — the per-update cost
// the live configuration pays in Figure 8.
func BenchmarkLiveMirroringUpdate(b *testing.B) {
	benchBackendUpdate(b, core.Config{Live: true})
}

// BenchmarkBareUpdate is the baseline for BenchmarkLiveMirroringUpdate.
func BenchmarkBareUpdate(b *testing.B) {
	benchBackendUpdate(b, core.Config{})
}

func benchBackendUpdate(b *testing.B, cfg core.Config) {
	p := partition.New(partition.DefaultCount)
	store := kv.NewStore(p, partition.Assign(p.Count(), 1), nil)
	backend := core.NewBackend("bench", 0, store.View(0), cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backend.Update(i%10_000, i)
	}
}

// BenchmarkChainResolution measures Chain.At as incremental chains grow —
// the read-side cost of incremental snapshots.
func BenchmarkChainResolution(b *testing.B) {
	for _, depth := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			c := core.NewChain()
			for v := 1; v <= depth; v++ {
				c = c.With(core.Versioned{SSID: int64(v), Value: v})
			}
			target := int64(depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := c.At(target); !ok {
					b.Fatal("resolution failed")
				}
			}
		})
	}
}

// BenchmarkSnapshotWriteQueryable measures phase-1 snapshot cost in
// queryable per-key mode vs BenchmarkSnapshotWriteBlob in Jet blob mode,
// for 10K keys per instance — the write-side delta of Figure 10.
func BenchmarkSnapshotWriteQueryable(b *testing.B) {
	benchSnapshotWrite(b, core.Config{Snapshots: true})
}

// BenchmarkSnapshotWriteBlob is the Jet-baseline counterpart.
func BenchmarkSnapshotWriteBlob(b *testing.B) {
	benchSnapshotWrite(b, core.Config{JetBlob: true})
}

func benchSnapshotWrite(b *testing.B, cfg core.Config) {
	p := partition.New(partition.DefaultCount)
	store := kv.NewStore(p, partition.Assign(p.Count(), 1), nil)
	backend := core.NewBackend("bench", 0, store.View(0), cfg)
	for i := 0; i < 10_000; i++ {
		backend.Update(i, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.SnapshotPrepare(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotPin measures the in-barrier cost of the asynchronous
// phase-1: pinning the dirty set (1K hot keys out of 10K) without
// writing the version chains. The chain writes move to the drainer —
// BenchmarkSnapshotPrepareSync below is what the barrier paid before,
// with the same dirty set.
func BenchmarkSnapshotPin(b *testing.B) {
	p := partition.New(partition.DefaultCount)
	store := kv.NewStore(p, partition.Assign(p.Count(), 1), nil)
	backend := core.NewBackend("bench", 0, store.View(0), core.Config{Snapshots: true, Incremental: true})
	for i := 0; i < 10_000; i++ {
		backend.Update(i, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 1_000; k++ {
			backend.Update(k, int64(i))
		}
		b.StartTimer()
		pin, err := backend.SnapshotPin(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if pin != nil {
			backend.DrainPin(pin)
		}
		b.StartTimer()
	}
}

// BenchmarkSnapshotPrepareSync is the synchronous-phase-1 counterpart:
// the full prepare (chain writes included) on the barrier path, same 10K
// keys and 1K-key dirty set as BenchmarkSnapshotPin.
func BenchmarkSnapshotPrepareSync(b *testing.B) {
	p := partition.New(partition.DefaultCount)
	store := kv.NewStore(p, partition.Assign(p.Count(), 1), nil)
	backend := core.NewBackend("bench", 0, store.View(0), core.Config{Snapshots: true})
	for i := 0; i < 10_000; i++ {
		backend.Update(i, int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 1_000; k++ {
			backend.Update(k, int64(i))
		}
		b.StartTimer()
		if _, err := backend.SnapshotPrepare(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}
